/**
 * @file
 * ringsim_fleetd: the fleet coordinator daemon.
 *
 * Listens on the same NDJSON protocol as ringsim_serve and routes
 * every job to a fleet of worker daemons: sharded by canonical-spec
 * cache key, sweep jobs split across workers and reassembled
 * byte-identically, duplicate in-flight specs coalesced to one
 * execution, dead workers failed over deterministically. See
 * src/fleet/coordinator.hpp for the full contract.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>

#include "fleet/coordinator.hpp"
#include "fleet/fleet_config.hpp"
#include "service/socket_server.hpp"
#include "util/logging.hpp"

using namespace ringsim;

namespace {

void
usage()
{
    std::cout <<
        "usage: ringsim_fleetd --workers E1,E2,... [flags]\n"
        "  --endpoint E        listen endpoint: tcp:PORT | unix:PATH "
        "| PATH\n"
        "                      (default ringsim-fleet.sock)\n"
        "  --workers E1,E2,... worker daemon endpoints, in shard "
        "order\n"
        "  --fanout N          concurrent subjob forwards per split "
        "sweep\n"
        "                      (default 2 x workers)\n"
        "  --probe-ms N        dead-worker re-probe interval "
        "(default 500)\n"
        "  --attempts N        transport attempts per worker before\n"
        "                      failing over (default 2)\n"
        "  --retry-after-ms N  backoff hint when no worker can "
        "answer\n"
        "                      (default 250)\n"
        "  --retain N          finished records kept for polling "
        "(default 1024)\n"
        "  --salt S            fleet identity salt (sharding + "
        "coalescing)\n"
        "  --no-split          forward sweeps whole instead of "
        "splitting\n"
        "                      them into per-block subjobs\n"
        "  --degrade           when no worker can answer, serve "
        "degradable\n"
        "                      jobs from the local analytic-model "
        "tier\n"
        "  --jobs-per-sweep N  fan-out of local degraded sweep "
        "solves\n"
        "  --test-jobs         accept the test-only sleep job kind\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Same rationale as ringsim_serve: a client gone mid-response
    // must not kill the coordinator (worker sockets add more fds
    // that can break at any moment).
    std::signal(SIGPIPE, SIG_IGN);

    std::string endpoint = "ringsim-fleet.sock";
    fleet::FleetConfig cfg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--endpoint") {
            endpoint = need_value("--endpoint");
        } else if (arg == "--workers") {
            for (std::string &worker : service::splitEndpointList(
                     need_value("--workers")))
                cfg.workers.push_back(std::move(worker));
        } else if (arg == "--fanout") {
            cfg.fanout = static_cast<unsigned>(std::strtoul(
                need_value("--fanout").c_str(), nullptr, 10));
        } else if (arg == "--probe-ms") {
            cfg.probeMs = std::strtoull(
                need_value("--probe-ms").c_str(), nullptr, 10);
        } else if (arg == "--attempts") {
            cfg.attemptsPerWorker = static_cast<unsigned>(std::strtoul(
                need_value("--attempts").c_str(), nullptr, 10));
        } else if (arg == "--retry-after-ms") {
            cfg.retryAfterMs = std::strtoull(
                need_value("--retry-after-ms").c_str(), nullptr, 10);
        } else if (arg == "--retain") {
            cfg.retainDone = std::strtoull(
                need_value("--retain").c_str(), nullptr, 10);
        } else if (arg == "--salt") {
            cfg.salt = need_value("--salt");
        } else if (arg == "--no-split") {
            cfg.splitSweeps = false;
        } else if (arg == "--degrade") {
            cfg.degradeToModel = true;
        } else if (arg == "--jobs-per-sweep") {
            cfg.jobsPerSweep = static_cast<unsigned>(std::strtoul(
                need_value("--jobs-per-sweep").c_str(), nullptr, 10));
        } else if (arg == "--test-jobs") {
            cfg.enableTestJobs = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            fatal("unknown flag '%s' (try --help)", arg.c_str());
        }
    }
    cfg.validate();

    fleet::FleetCore core(cfg);
    service::SocketServer server(core, endpoint);
    std::string error;
    if (!server.tryStart(&error))
        fatal("cannot serve: %s", error.c_str());
    inform("fleet: listening on %s (%zu workers)", endpoint.c_str(),
           cfg.workers.size());
    server.serve();
    inform("fleet: shutdown complete");
    return 0;
}
