#include "shard.hpp"

#include "service/cache_key.hpp"
#include "util/logging.hpp"

namespace ringsim::fleet {

namespace {

/**
 * Domain separator ("FLEET001"): keeps the shard spread independent
 * of any structure in how the keys themselves were fingerprinted.
 */
constexpr std::uint64_t kShardSeed = 0x464c454554303031ULL;

} // namespace

std::size_t
shardIndex(const std::string &key, std::size_t n)
{
    if (n == 0)
        panic("shardIndex: zero workers");
    return static_cast<std::size_t>(
        service::fingerprint64(key, kShardSeed) % n);
}

std::vector<std::size_t>
failoverOrder(const std::string &key, std::size_t n)
{
    std::vector<std::size_t> order;
    order.reserve(n);
    std::size_t first = shardIndex(key, n);
    for (std::size_t step = 0; step < n; ++step)
        order.push_back((first + step) % n);
    return order;
}

} // namespace ringsim::fleet
