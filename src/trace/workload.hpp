/**
 * @file
 * Benchmark workload descriptions.
 *
 * The paper drives its evaluation with captured traces of six programs
 * (Table 2): MP3D, WATER and CHOLESKY from SPLASH at 8/16/32 CPUs, and
 * FFT, WEATHER and SIMPLE at 64 CPUs (MIT traces). Those traces are
 * not available, so each workload here is a *synthetic* generator
 * parameterized to reproduce the Table 2 reference mix and the
 * program's sharing pattern (see DESIGN.md §2). A WorkloadConfig fully
 * describes one (benchmark, size) trace; presets for the paper's
 * twelve combinations are in workloadPreset().
 */

#ifndef RINGSIM_TRACE_WORKLOAD_HPP
#define RINGSIM_TRACE_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ringsim::trace {

/** The six benchmarks of the paper. */
enum class Benchmark { MP3D, WATER, CHOLESKY, FFT, WEATHER, SIMPLE };

/** Printable benchmark name ("MP3D", ...). */
const char *benchmarkName(Benchmark b);

/** Sharing-pattern family implemented by the generators. */
enum class SharingPattern {
    ObjectEpisode,    //!< objects touched in bursts (MP3D migratory,
                      //!< WATER read-mostly — knobs differ)
    ProducerConsumer, //!< panels written once, read by many (CHOLESKY)
    AllToAll,         //!< write own segment, read others' (FFT)
    SweepNeighbor,    //!< big-band sweeps + boundary reads (WEATHER,
                      //!< SIMPLE)
};

/** Knobs of a sharing-pattern generator. */
struct PatternKnobs
{
    /** Total shared pool size in blocks (all units together). */
    Count poolBlocks = 4096;

    /** Blocks per unit (object / panel / segment / band). */
    unsigned unitBlocks = 4;

    /** Average accesses per block per episode (locality knob). */
    double readsPerBlock = 4.0;

    /** Per-access write probability (or produce-pass density). */
    double writeProb = 0.2;

    /**
     * Pattern-specific secondary probability:
     *  - ObjectEpisode: probability an episode is a *write* episode
     *    (writes only occur inside write episodes, so readers
     *    accumulate on a block between writers — the knob behind the
     *    multi-sharer invalidation fractions of Table 1);
     *  - ProducerConsumer: probability an episode produces;
     *  - SweepNeighbor: probability an access reads a neighbor
     *    boundary block.
     */
    double auxProb = 0.0;

    /**
     * Zipf skew of the object/panel choice (0 = uniform). Higher
     * values concentrate episodes on a hot subset, raising reuse and
     * lowering the shared miss rate (WATER, CHOLESKY).
     */
    double zipfAlpha = 0.0;
};

/** Paper-reported characteristics used as reproduction targets. */
struct Table2Targets
{
    double dataRefsMillions = 0;
    double instrRefsMillions = 0;
    double privateRefsMillions = 0;
    double sharedRefsMillions = 0;
    double privateWriteFrac = 0;
    double sharedWriteFrac = 0;
    double totalMissRate = 0;  //!< fraction of data refs
    double sharedMissRate = 0; //!< fraction of shared refs
};

/** Complete description of one synthetic workload. */
struct WorkloadConfig
{
    Benchmark benchmark = Benchmark::MP3D;
    unsigned procs = 8;

    /** Data references each processor emits. */
    Count dataRefsPerProc = 150'000;

    /** Instruction references per data reference. */
    double instrPerData = 2.0;

    /** Fraction of data references to shared data. */
    double sharedFrac = 0.3;

    /** Write fraction of private data references. */
    double privateWriteFrac = 0.2;

    /** Private-stream miss steering (cold/streaming fraction). */
    double privateMissFrac = 0.002;

    /** Private working-set size in blocks. */
    Count privateWorkingSet = 2048;

    SharingPattern pattern = SharingPattern::ObjectEpisode;
    PatternKnobs knobs;

    /** Cache block size the addresses are laid out for. */
    size_t blockBytes = 16;

    /** Master seed; per-processor streams fork from it. */
    std::uint64_t seed = 12345;

    /** Paper values this preset aims at (for reporting only). */
    Table2Targets targets;

    /** "MP3D 16"-style display name. */
    std::string displayName() const;

    /** Multiply per-processor reference counts by @p factor. */
    void scale(double factor);
};

/**
 * The preset for one of the paper's twelve (benchmark, size)
 * combinations. Valid sizes: 8/16/32 for the SPLASH programs,
 * 64 for FFT/WEATHER/SIMPLE. fatal()s on an invalid combination.
 */
WorkloadConfig workloadPreset(Benchmark b, unsigned procs);

/** All twelve paper combinations, in Table 2 order. */
std::vector<WorkloadConfig> allWorkloadPresets();

/** Parse "mp3d"/"water"/... (case-insensitive); fatal() on failure. */
Benchmark benchmarkFromName(const std::string &name);

} // namespace ringsim::trace

#endif // RINGSIM_TRACE_WORKLOAD_HPP
