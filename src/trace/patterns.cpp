#include "patterns.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ringsim::trace {

namespace {

/** Draw a per-block access count around the fractional knob @p k. */
unsigned
drawPerBlock(Rng &rng, double k)
{
    if (k <= 1.0)
        return 1;
    auto base = static_cast<unsigned>(k);
    double frac = k - static_cast<double>(base);
    return base + (rng.chance(frac) ? 1 : 0);
}

/**
 * Objects touched in episodes (MP3D's migratory particles, WATER's
 * read-mostly molecules). An episode picks an object and performs
 * readsPerBlock accesses on each of its blocks. With probability
 * auxProb the episode is a *write* episode whose accesses store with
 * probability writeProb; read episodes never write, so RS copies
 * accumulate across processors between writers. zipfAlpha > 0 skews
 * the object choice toward a per-processor hot set (WATER locality);
 * zero gives uniform choice (MP3D migration).
 */
class ObjectEpisodeModel : public SharedModel
{
  public:
    ObjectEpisodeModel(const WorkloadConfig &cfg, NodeId proc)
        : knobs_(cfg.knobs),
          numObjects_(std::max<Count>(1,
              cfg.knobs.poolBlocks / cfg.knobs.unitBlocks)),
          procs_(cfg.procs), self_(proc),
          sliceObjects_(std::max<Count>(1, numObjects_ / cfg.procs))
    {}

    SharedAccess
    next(Rng &rng) override
    {
        if (blockAccessesLeft_ == 0)
            advanceBlock(rng);
        bool first = blockAccessesLeft_ == blockAccessTotal_;
        --blockAccessesLeft_;
        SharedAccess access;
        access.blockIndex =
            object_ * knobs_.unitBlocks + blockInObject_;
        // Read-modify-write: the first touch of a block is always a
        // read, later touches of a write episode store with
        // probability writeProb.
        access.isWrite = writing_ && !first &&
                         rng.chance(knobs_.writeProb);
        return access;
    }

  private:
    void
    advanceBlock(Rng &rng)
    {
        if (blocksLeft_ == 0) {
            writing_ = rng.chance(knobs_.auxProb);
            if (knobs_.zipfAlpha > 0.0) {
                // Owner-affine mode (WATER): the pool is sliced per
                // processor. Writes update the processor's own
                // molecules; reads stay home half the time and
                // otherwise visit the downstream neighbor's slice —
                // so a written molecule typically has about one
                // remote sharer to invalidate.
                Count rank =
                    rng.nextZipf(sliceObjects_, knobs_.zipfAlpha);
                NodeId owner = self_;
                if (!writing_ && procs_ > 1 && rng.chance(0.5))
                    owner = (self_ + 1) % procs_;
                object_ = (owner * sliceObjects_ + rank) % numObjects_;
            } else {
                // Free migration (MP3D): any processor grabs any
                // object.
                object_ = rng.nextBounded(numObjects_);
            }
            blocksLeft_ = knobs_.unitBlocks;
            blockInObject_ = 0;
        } else {
            ++blockInObject_;
        }
        --blocksLeft_;
        blockAccessesLeft_ = drawPerBlock(rng, knobs_.readsPerBlock);
        blockAccessTotal_ = blockAccessesLeft_;
    }

    PatternKnobs knobs_;
    Count numObjects_;
    unsigned procs_;
    NodeId self_;
    Count sliceObjects_;
    Count object_ = 0;
    bool writing_ = false;
    unsigned blocksLeft_ = 0;
    unsigned blockInObject_ = 0;
    unsigned blockAccessesLeft_ = 0;
    unsigned blockAccessTotal_ = 0;
};

/**
 * Producer-consumer panels (CHOLESKY). With probability auxProb an
 * episode *produces*: the processor writes every block of a panel
 * from its own slice of the pool (producer affinity — a processor
 * factors its own panels, so repeated production write-hits and the
 * first production after consumers read it upgrades; writeProb sets
 * the stores per block of a produce pass). Other episodes *consume*:
 * a panel chosen with pipeline affinity is read readsPerBlock times
 * per block.
 */
class ProducerConsumerModel : public SharedModel
{
  public:
    ProducerConsumerModel(const WorkloadConfig &cfg, NodeId proc)
        : knobs_(cfg.knobs),
          numPanels_(std::max<Count>(1,
              cfg.knobs.poolBlocks / cfg.knobs.unitBlocks)),
          panelsPerProc_(std::max<Count>(1, numPanels_ / cfg.procs)),
          self_(proc),
          writesPerBlock_(std::max(1u,
              static_cast<unsigned>(cfg.knobs.writeProb)))
    {}

    SharedAccess
    next(Rng &rng) override
    {
        if (accessesLeft_ == 0)
            startEpisode(rng);
        --accessesLeft_;

        SharedAccess access;
        if (producing_) {
            access.blockIndex =
                panel_ * knobs_.unitBlocks + cursor_++ / writesPerBlock_;
            access.isWrite = true;
        } else {
            if (blockAccessesLeft_ == 0) {
                ++blockInPanel_;
                blockAccessesLeft_ =
                    drawPerBlock(rng, knobs_.readsPerBlock);
            }
            --blockAccessesLeft_;
            access.blockIndex = panel_ * knobs_.unitBlocks +
                                blockInPanel_ % knobs_.unitBlocks;
            access.isWrite = false;
        }
        return access;
    }

  private:
    void
    startEpisode(Rng &rng)
    {
        producing_ = rng.chance(knobs_.auxProb);
        if (producing_) {
            // A Zipf-hot panel of this processor's own slice.
            Count rank = knobs_.zipfAlpha > 0.0
                ? rng.nextZipf(panelsPerProc_, knobs_.zipfAlpha)
                : rng.nextBounded(panelsPerProc_);
            panel_ = (self_ * panelsPerProc_ + rank) % numPanels_;
            cursor_ = 0;
            accessesLeft_ = writesPerBlock_ * knobs_.unitBlocks;
            return;
        }
        // Consume with pipeline affinity: mostly the *next*
        // producer's hot panels (one dedicated consumer per panel,
        // so the producer's upgrade typically purges a single
        // sharer), with an occasional visit anywhere (the fan-out
        // that gives CHOLESKY its long invalidation tail in Table 1).
        {
            Count producers = std::max<Count>(1,
                numPanels_ / panelsPerProc_);
            Count producer = rng.chance(0.12)
                ? rng.nextBounded(producers)
                : (self_ + 1) % producers;
            Count rank = knobs_.zipfAlpha > 0.0
                ? rng.nextZipf(panelsPerProc_, knobs_.zipfAlpha)
                : rng.nextBounded(panelsPerProc_);
            panel_ = (producer * panelsPerProc_ + rank) % numPanels_;
        }
        blockInPanel_ = 0;
        blockAccessesLeft_ = drawPerBlock(rng, knobs_.readsPerBlock);
        accessesLeft_ = std::max<unsigned>(
            1, static_cast<unsigned>(knobs_.unitBlocks *
                                     knobs_.readsPerBlock));
    }

    PatternKnobs knobs_;
    Count numPanels_;
    Count panelsPerProc_;
    NodeId self_;
    unsigned writesPerBlock_;
    Count panel_ = 0;
    bool producing_ = false;
    unsigned cursor_ = 0;
    unsigned accessesLeft_ = 0;
    unsigned blockInPanel_ = 0;
    unsigned blockAccessesLeft_ = 0;
};

/**
 * All-to-all transpose (FFT). The pool is divided into one segment per
 * processor. Passes alternate: a write pass touches every block of the
 * processor's own segment readsPerBlock times with writes; a read pass
 * picks another processor's segment and reads it the same way.
 */
class AllToAllModel : public SharedModel
{
  public:
    AllToAllModel(const WorkloadConfig &cfg, NodeId proc)
        : knobs_(cfg.knobs), procs_(cfg.procs), self_(proc),
          segBlocks_(std::max<Count>(1, cfg.knobs.poolBlocks / cfg.procs))
    {}

    SharedAccess
    next(Rng &rng) override
    {
        if (accessesLeft_ == 0)
            startPass(rng);
        --accessesLeft_;

        if (blockAccessesLeft_ == 0) {
            ++blockInSeg_;
            blockAccessesLeft_ = drawPerBlock(rng, knobs_.readsPerBlock);
        }
        --blockAccessesLeft_;

        SharedAccess access;
        access.blockIndex =
            target_ * segBlocks_ + (blockInSeg_ % segBlocks_);
        access.isWrite = writing_;
        return access;
    }

  private:
    void
    startPass(Rng &rng)
    {
        writing_ = !writing_;
        if (writing_) {
            target_ = self_;
        } else if (procs_ > 1) {
            target_ = static_cast<NodeId>(
                rng.nextBounded(procs_ - 1));
            if (target_ >= self_)
                ++target_;
        } else {
            target_ = self_;
        }
        blockInSeg_ = 0;
        blockAccessesLeft_ = drawPerBlock(rng, knobs_.readsPerBlock);
        accessesLeft_ = std::max<Count>(
            1, static_cast<Count>(static_cast<double>(segBlocks_) *
                                  knobs_.readsPerBlock));
    }

    PatternKnobs knobs_;
    unsigned procs_;
    NodeId self_;
    Count segBlocks_;
    NodeId target_ = 0;
    bool writing_ = false; // flipped to true by the first startPass
    Count accessesLeft_ = 0;
    Count blockInSeg_ = 0;
    unsigned blockAccessesLeft_ = 0;
};

/**
 * Near-neighbor grid sweeps (WEATHER, SIMPLE). Each processor owns a
 * band larger than the cache and sweeps it cyclically, touching each
 * block readsPerBlock times (capacity misses dominate). writeProb is
 * the expected number of writes per block visit. With probability
 * auxProb an access instead reads a boundary block of an adjacent
 * processor's band.
 */
class SweepNeighborModel : public SharedModel
{
  public:
    static constexpr Count boundaryBlocks = 64;

    SweepNeighborModel(const WorkloadConfig &cfg, NodeId proc)
        : knobs_(cfg.knobs), procs_(cfg.procs), self_(proc),
          bandBlocks_(std::max<Count>(1, cfg.knobs.poolBlocks / cfg.procs))
    {}

    SharedAccess
    next(Rng &rng) override
    {
        if (knobs_.auxProb > 0.0 && rng.chance(knobs_.auxProb))
            return boundaryRead(rng);

        if (blockAccessesLeft_ == 0) {
            cursor_ = (cursor_ + 1) % bandBlocks_;
            blockAccessesLeft_ = drawPerBlock(rng, knobs_.readsPerBlock);
        }
        --blockAccessesLeft_;

        SharedAccess access;
        access.blockIndex = self_ * bandBlocks_ + cursor_;
        access.isWrite =
            rng.chance(knobs_.writeProb / knobs_.readsPerBlock);
        return access;
    }

  private:
    SharedAccess
    boundaryRead(Rng &rng)
    {
        NodeId neighbor;
        if (procs_ == 1) {
            neighbor = self_;
        } else if (rng.chance(0.5)) {
            neighbor = (self_ + 1) % procs_;
        } else {
            neighbor = (self_ + procs_ - 1) % procs_;
        }
        Count zone = std::min(boundaryBlocks, bandBlocks_);
        Count off;
        if (rng.chance(0.5)) {
            off = rng.nextBounded(zone); // leading edge
        } else {
            off = bandBlocks_ - 1 - rng.nextBounded(zone);
        }
        SharedAccess access;
        access.blockIndex = neighbor * bandBlocks_ + off;
        access.isWrite = false;
        return access;
    }

    PatternKnobs knobs_;
    unsigned procs_;
    NodeId self_;
    Count bandBlocks_;
    Count cursor_ = 0;
    unsigned blockAccessesLeft_ = 0;
};

} // namespace

std::unique_ptr<SharedModel>
makeSharedModel(const WorkloadConfig &cfg, NodeId proc)
{
    if (proc >= cfg.procs)
        panic("makeSharedModel: proc %u out of range", proc);
    switch (cfg.pattern) {
      case SharingPattern::ObjectEpisode:
        return std::make_unique<ObjectEpisodeModel>(cfg, proc);
      case SharingPattern::ProducerConsumer:
        return std::make_unique<ProducerConsumerModel>(cfg, proc);
      case SharingPattern::AllToAll:
        return std::make_unique<AllToAllModel>(cfg, proc);
      case SharingPattern::SweepNeighbor:
        return std::make_unique<SweepNeighborModel>(cfg, proc);
    }
    panic("unknown sharing pattern");
}

} // namespace ringsim::trace
