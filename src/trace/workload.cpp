#include "workload.hpp"

#include <algorithm>
#include <cctype>

#include "util/logging.hpp"

namespace ringsim::trace {

const char *
benchmarkName(Benchmark b)
{
    switch (b) {
      case Benchmark::MP3D:
        return "MP3D";
      case Benchmark::WATER:
        return "WATER";
      case Benchmark::CHOLESKY:
        return "CHOLESKY";
      case Benchmark::FFT:
        return "FFT";
      case Benchmark::WEATHER:
        return "WEATHER";
      case Benchmark::SIMPLE:
        return "SIMPLE";
    }
    return "?";
}

std::string
WorkloadConfig::displayName() const
{
    return std::string(benchmarkName(benchmark)) + " " +
           std::to_string(procs);
}

void
WorkloadConfig::scale(double factor)
{
    if (factor <= 0.0)
        fatal("workload scale factor must be positive");
    dataRefsPerProc =
        static_cast<Count>(static_cast<double>(dataRefsPerProc) * factor);
    if (dataRefsPerProc == 0)
        dataRefsPerProc = 1;
}

namespace {

/**
 * Fill the fields shared by all sizes of one benchmark; the
 * per-size presets below override the mix fractions.
 */
WorkloadConfig
baseConfig(Benchmark b, unsigned procs)
{
    WorkloadConfig cfg;
    cfg.benchmark = b;
    cfg.procs = procs;
    return cfg;
}

} // namespace

WorkloadConfig
workloadPreset(Benchmark b, unsigned procs)
{
    WorkloadConfig cfg = baseConfig(b, procs);
    bool splash = (b == Benchmark::MP3D || b == Benchmark::WATER ||
                   b == Benchmark::CHOLESKY);
    if (splash && procs != 8 && procs != 16 && procs != 32) {
        fatal("%s presets exist for 8/16/32 processors, not %u",
              benchmarkName(b), procs);
    }
    if (!splash && procs != 64) {
        fatal("%s presets exist for 64 processors, not %u",
              benchmarkName(b), procs);
    }

    switch (b) {
      case Benchmark::MP3D:
        // Migratory particle objects: bursts of read-modify-write on
        // randomly chosen objects. High read-write sharing => many
        // dirty misses and sharer invalidations.
        cfg.pattern = SharingPattern::ObjectEpisode;
        cfg.instrPerData = 2.0;
        cfg.privateWriteFrac = 0.22;
        cfg.knobs.unitBlocks = 4;
        cfg.knobs.poolBlocks = static_cast<Count>(procs) * 96;
        cfg.knobs.zipfAlpha = 0.0; // uniform object choice (migration)
        cfg.knobs.auxProb = 0.85;  // most episodes modify (RMW)
        if (procs == 8) {
            cfg.sharedFrac = 0.338;
            cfg.knobs.readsPerBlock = 10.0;
            cfg.knobs.writeProb = 0.43;
            cfg.privateMissFrac = 0.0015;
            cfg.targets = {3.76, 7.51, 2.48, 1.27, 0.22, 0.33,
                           0.0329, 0.0944};
        } else if (procs == 16) {
            cfg.sharedFrac = 0.363;
            cfg.knobs.readsPerBlock = 8.0;
            cfg.knobs.writeProb = 0.40;
            cfg.privateMissFrac = 0.0019;
            cfg.targets = {3.94, 8.23, 2.50, 1.43, 0.22, 0.30,
                           0.0454, 0.1217};
        } else {
            cfg.sharedFrac = 0.448;
            cfg.knobs.readsPerBlock = 2.8;
            cfg.knobs.writeProb = 0.38;
            cfg.privateMissFrac = 0.0098;
            cfg.targets = {4.64, 11.16, 2.51, 2.08, 0.22, 0.21,
                           0.1655, 0.3574};
        }
        break;

      case Benchmark::WATER:
        // Molecule data read by everyone, written rarely: low miss
        // rates, invalidations mostly hit multiple sharers.
        cfg.pattern = SharingPattern::ObjectEpisode;
        cfg.instrPerData = 2.37;
        cfg.privateWriteFrac = 0.18;
        cfg.knobs.unitBlocks = 2;
        cfg.knobs.poolBlocks = static_cast<Count>(procs) * 512;
        cfg.knobs.zipfAlpha = 1.6; // Zipf-skewed molecule choice
        cfg.knobs.auxProb = 0.12;  // write episodes are rare
        if (procs == 8) {
            cfg.sharedFrac = 0.136;
            cfg.knobs.readsPerBlock = 22.0;
            cfg.knobs.writeProb = 0.61;
            cfg.privateMissFrac = 0.00026;
            cfg.targets = {11.05, 25.89, 9.54, 1.50, 0.18, 0.07,
                           0.0021, 0.0138};
        } else if (procs == 16) {
            cfg.sharedFrac = 0.159;
            cfg.knobs.readsPerBlock = 18.0;
            cfg.knobs.writeProb = 0.53;
            cfg.privateMissFrac = 0.00036;
            cfg.targets = {11.36, 27.15, 9.55, 1.81, 0.18, 0.06,
                           0.0032, 0.0182};
        } else {
            cfg.sharedFrac = 0.175;
            cfg.knobs.readsPerBlock = 9.0;
            cfg.knobs.writeProb = 0.56;
            cfg.privateMissFrac = 0.00075;
            cfg.targets = {11.60, 28.12, 9.56, 2.03, 0.18, 0.06,
                           0.0073, 0.0382};
        }
        break;

      case Benchmark::CHOLESKY:
        // Producer-consumer panels: a panel is factored (written) by
        // one processor, then read by several.
        cfg.pattern = SharingPattern::ProducerConsumer;
        cfg.instrPerData = 2.4;
        cfg.privateWriteFrac = 0.20;
        cfg.knobs.unitBlocks = 8;
        cfg.knobs.poolBlocks = static_cast<Count>(procs) * 4096;
        cfg.knobs.zipfAlpha = 0.0; // panel reuse via affinity, not rank
        cfg.knobs.writeProb = 1.0; // stores per block when producing
        if (procs == 8) {
            cfg.sharedFrac = 0.232;
            cfg.knobs.readsPerBlock = 12.9;
            cfg.knobs.auxProb = 0.68; // produce probability
            cfg.privateMissFrac = 0.0055;
            cfg.targets = {6.97, 15.00, 5.29, 1.62, 0.21, 0.14,
                           0.0288, 0.1061};
        } else if (procs == 16) {
            // Growing working set: the panel pool rivals the cache,
            // so capacity misses and consumer roll-outs appear.
            cfg.sharedFrac = 0.286;
            cfg.knobs.readsPerBlock = 4.6;
            cfg.knobs.auxProb = 0.31;
            cfg.privateMissFrac = 0.0099;
            cfg.targets = {8.91, 21.26, 6.27, 2.55, 0.20, 0.09,
                           0.0612, 0.1896};
        } else {
            // The 32-CPU run's shared miss rate is capacity-driven:
            // the panel pool outgrows the cache and the panel choice
            // flattens.
            cfg.sharedFrac = 0.388;
            cfg.knobs.poolBlocks = static_cast<Count>(procs) * 6144;
            cfg.knobs.zipfAlpha = 0.0;
            cfg.knobs.readsPerBlock = 1.3;
            cfg.knobs.auxProb = 0.064;
            cfg.privateMissFrac = 0.0228;
            cfg.targets = {13.75, 37.84, 8.21, 5.33, 0.18, 0.05,
                           0.1947, 0.4671};
        }
        break;

      case Benchmark::FFT:
        // Transpose-style all-to-all: write own segment, read a
        // permuted other segment. Half the shared refs are writes.
        cfg.pattern = SharingPattern::AllToAll;
        cfg.instrPerData = 0.72;
        cfg.privateWriteFrac = 0.27;
        cfg.sharedFrac = 0.239;
        cfg.knobs.unitBlocks = 0; // derived: poolBlocks / procs
        cfg.knobs.poolBlocks = static_cast<Count>(procs) * 256;
        cfg.knobs.readsPerBlock = 2.0; // passes touch each block twice
        cfg.knobs.writeProb = 1.0;     // write passes are all-writes
        cfg.privateMissFrac = 0.0080;
        cfg.targets = {4.31, 3.12, 3.28, 1.03, 0.27, 0.50,
                       0.0685, 0.2612};
        break;

      case Benchmark::WEATHER:
        // Grid sweeps over a band larger than the cache plus
        // neighbor-boundary reads: capacity-dominated clean misses.
        cfg.pattern = SharingPattern::SweepNeighbor;
        cfg.instrPerData = 0.87;
        cfg.privateWriteFrac = 0.16;
        cfg.sharedFrac = 0.161;
        cfg.knobs.unitBlocks = 0; // derived: poolBlocks / procs
        cfg.knobs.poolBlocks = static_cast<Count>(procs) * 16384;
        cfg.knobs.readsPerBlock = 3.0;
        cfg.knobs.writeProb = 0.57; // writes per block visit
        cfg.knobs.auxProb = 0.04;   // boundary-read probability
        cfg.privateMissFrac = 0.0034;
        cfg.targets = {15.63, 13.64, 13.11, 2.52, 0.16, 0.19,
                       0.0525, 0.3078};
        break;

      case Benchmark::SIMPLE:
        cfg.pattern = SharingPattern::SweepNeighbor;
        cfg.instrPerData = 0.83;
        cfg.privateWriteFrac = 0.35;
        cfg.sharedFrac = 0.290;
        cfg.knobs.unitBlocks = 0;
        cfg.knobs.poolBlocks = static_cast<Count>(procs) * 16384;
        cfg.knobs.readsPerBlock = 2.0;
        cfg.knobs.writeProb = 0.22;
        cfg.knobs.auxProb = 0.06;
        cfg.privateMissFrac = 0.0035;
        cfg.targets = {14.02, 11.59, 9.94, 4.07, 0.35, 0.11,
                       0.1597, 0.5416};
        break;
    }
    return cfg;
}

std::vector<WorkloadConfig>
allWorkloadPresets()
{
    std::vector<WorkloadConfig> all;
    for (unsigned procs : {8u, 16u, 32u}) {
        all.push_back(workloadPreset(Benchmark::MP3D, procs));
    }
    for (unsigned procs : {8u, 16u, 32u}) {
        all.push_back(workloadPreset(Benchmark::WATER, procs));
    }
    for (unsigned procs : {8u, 16u, 32u}) {
        all.push_back(workloadPreset(Benchmark::CHOLESKY, procs));
    }
    all.push_back(workloadPreset(Benchmark::FFT, 64));
    all.push_back(workloadPreset(Benchmark::WEATHER, 64));
    all.push_back(workloadPreset(Benchmark::SIMPLE, 64));
    return all;
}

Benchmark
benchmarkFromName(const std::string &name)
{
    std::string lower;
    for (char c : name)
        lower += static_cast<char>(std::tolower(c));
    if (lower == "mp3d")
        return Benchmark::MP3D;
    if (lower == "water")
        return Benchmark::WATER;
    if (lower == "cholesky")
        return Benchmark::CHOLESKY;
    if (lower == "fft")
        return Benchmark::FFT;
    if (lower == "weather")
        return Benchmark::WEATHER;
    if (lower == "simple")
        return Benchmark::SIMPLE;
    fatal("unknown benchmark '%s' (want mp3d/water/cholesky/fft/"
          "weather/simple)", name.c_str());
}

} // namespace ringsim::trace
