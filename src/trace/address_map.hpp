/**
 * @file
 * Simulated physical address space layout and home-node mapping.
 *
 * Section 3.1: physical shared memory is partitioned among the nodes;
 * the node a block's address maps to is its *home*. Section 4.2 notes
 * shared pages are randomly allocated among the nodes — we hash the
 * page number. Private data and code are allocated on the owning
 * node's partition (the natural allocation policy of the era's OSes).
 *
 * Layout (byte addresses):
 *   shared data   [sharedBase,  sharedBase  + sharedBlocks * block)
 *   private data  [privateBase + p * regionStride, ...) per processor
 *   code          [codeBase    + p * regionStride, ...) per processor
 */

#ifndef RINGSIM_TRACE_ADDRESS_MAP_HPP
#define RINGSIM_TRACE_ADDRESS_MAP_HPP

#include <cstddef>

#include "util/units.hpp"

namespace ringsim::trace {

/** Address-space layout for an N-node system. */
class AddressMap
{
  public:
    /** Base of the shared data region. */
    static constexpr Addr sharedBase = 0x0000'1000'0000ULL;

    /**
     * Base of the per-processor private data regions. Offset by half
     * the paper cache's index space (4096 blocks of 16 B) so the
     * private working set and the hot shared pool land in different
     * direct-mapped sets, as a real allocator's separate arenas
     * typically would.
     */
    static constexpr Addr privateBase = 0x0040'0001'0000ULL;

    /** Base of the per-processor code regions. */
    static constexpr Addr codeBase = 0x0080'0000'0000ULL;

    /** Bytes reserved per processor for private data / code. */
    static constexpr Addr regionStride = 0x1000'0000ULL; // 256 MB

    /** Page size used for home assignment. */
    static constexpr Addr pageBytes = 4096;

    /**
     * @param nodes number of nodes in the system.
     * @param block_bytes cache block size.
     * @param seed seed for the random shared-page placement.
     */
    AddressMap(unsigned nodes, size_t block_bytes, std::uint64_t seed);

    /** Number of nodes. */
    unsigned nodes() const { return nodes_; }

    /** Cache block size. */
    size_t blockBytes() const { return blockBytes_; }

    /** Byte address of shared block @p index. */
    Addr sharedBlock(std::uint64_t index) const;

    /** Byte address of private block @p index of processor @p p. */
    Addr privateBlock(NodeId p, std::uint64_t index) const;

    /** Byte address of code block @p index of processor @p p. */
    Addr codeBlock(NodeId p, std::uint64_t index) const;

    /** True if @p addr falls in the shared region. */
    bool isShared(Addr addr) const;

    /** True if @p addr falls in any private data region. */
    bool isPrivate(Addr addr) const;

    /** Home node of the block containing @p addr. */
    NodeId home(Addr addr) const;

  private:
    unsigned nodes_;
    size_t blockBytes_;
    std::uint64_t seed_;
};

} // namespace ringsim::trace

#endif // RINGSIM_TRACE_ADDRESS_MAP_HPP
