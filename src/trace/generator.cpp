#include "generator.hpp"

#include "util/logging.hpp"

namespace ringsim::trace {

AddressMap
makeAddressMap(const WorkloadConfig &cfg)
{
    return AddressMap(cfg.procs, cfg.blockBytes, cfg.seed);
}

SyntheticStream::SyntheticStream(const WorkloadConfig &cfg,
                                 const AddressMap &map, NodeId proc)
    : cfg_(cfg), map_(map), proc_(proc),
      rng_(Rng(cfg.seed).fork(proc)),
      sharedModel_(makeSharedModel(cfg, proc))
{
    if (proc >= cfg.procs)
        panic("SyntheticStream: proc %u out of range", proc);
}

std::uint64_t
SyntheticStream::nextPrivateBlock()
{
    // Initialization sweep: touch the whole working set once, so it is
    // resident before the measurement window opens (real programs do
    // exactly this while setting up their data structures).
    if (warmCursor_ < cfg_.privateWorkingSet)
        return warmCursor_++;

    if (rng_.chance(cfg_.privateMissFrac)) {
        // Streaming / cold access: a block never touched before, past
        // the resident working set. Sets the private miss rate floor.
        return cfg_.privateWorkingSet + privateStreamCursor_++;
    }
    // Strongly Zipf-skewed reuse inside the resident working set, so
    // the warmup window covers the hot blocks and the steady-state
    // private miss rate is set by privateMissFrac, not by cold tail
    // touches.
    return rng_.nextZipf(cfg_.privateWorkingSet, 1.1);
}

bool
SyntheticStream::next(TraceRecord &out)
{
    if (dataEmitted_ >= cfg_.dataRefsPerProc)
        return false;

    // Emit the owed instruction fetches before each data reference.
    if (instrDebt_ >= 1.0) {
        instrDebt_ -= 1.0;
        out.op = Op::Instr;
        std::uint64_t block = codeCursor_ % codeLoopBlocks;
        std::uint64_t word = (codeCursor_ / codeLoopBlocks) % 4;
        out.addr = map_.codeBlock(proc_, block) + word * 4;
        ++codeCursor_;
        return true;
    }
    instrDebt_ += cfg_.instrPerData;

    ++dataEmitted_;
    if (rng_.chance(cfg_.sharedFrac)) {
        SharedAccess access = sharedModel_->next(rng_);
        out.op = access.isWrite ? Op::Write : Op::Read;
        out.addr = map_.sharedBlock(access.blockIndex);
    } else {
        out.op = rng_.chance(cfg_.privateWriteFrac) ? Op::Write
                                                    : Op::Read;
        out.addr = map_.privateBlock(proc_, nextPrivateBlock());
    }
    return true;
}

TraceSet
makeTraceSet(const WorkloadConfig &cfg, const AddressMap &map)
{
    TraceSet set;
    set.reserve(cfg.procs);
    for (NodeId p = 0; p < cfg.procs; ++p)
        set.push_back(std::make_unique<SyntheticStream>(cfg, map, p));
    return set;
}

} // namespace ringsim::trace
