/**
 * @file
 * Per-processor reference streams.
 *
 * A trace for an N-processor run is N independent streams, one per
 * CPU; the simulator interleaves them by timing (the functional
 * engines interleave round-robin). Streams are lazy so multi-million
 * reference runs need no trace storage.
 */

#ifndef RINGSIM_TRACE_STREAM_HPP
#define RINGSIM_TRACE_STREAM_HPP

#include <memory>
#include <vector>

#include "trace/record.hpp"

namespace ringsim::trace {

/** A lazily-produced sequence of references for one processor. */
class RefStream
{
  public:
    virtual ~RefStream() = default;

    /**
     * Produce the next reference.
     * @return false when the stream is exhausted (@p out untouched).
     */
    virtual bool next(TraceRecord &out) = 0;
};

/** A stream over a pre-materialized vector (tests, file replay). */
class VectorStream : public RefStream
{
  public:
    explicit VectorStream(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(TraceRecord &out) override
    {
        if (pos_ >= records_.size())
            return false;
        out = records_[pos_++];
        return true;
    }

  private:
    std::vector<TraceRecord> records_;
    size_t pos_ = 0;
};

/** The full trace of a run: one stream per processor. */
using TraceSet = std::vector<std::unique_ptr<RefStream>>;

/** Materialize up to @p limit records of a stream (test helper). */
std::vector<TraceRecord> drain(RefStream &stream,
                               size_t limit = ~size_t(0));

} // namespace ringsim::trace

#endif // RINGSIM_TRACE_STREAM_HPP
