/**
 * @file
 * Shared-data access pattern models.
 *
 * Each synthetic benchmark's read-write sharing behavior is produced
 * by one of these models (DESIGN.md §2 maps benchmarks to patterns).
 * A model is per-processor state that emits a sequence of (shared
 * block index, is-write) pairs; the generator turns indices into
 * addresses. Models are deliberately simple state machines whose knobs
 * (PatternKnobs) steer the miss rate, write fraction and sharing style
 * toward the paper's Table 2 values.
 */

#ifndef RINGSIM_TRACE_PATTERNS_HPP
#define RINGSIM_TRACE_PATTERNS_HPP

#include <cstdint>
#include <memory>

#include "trace/workload.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace ringsim::trace {

/** One shared-data access produced by a pattern model. */
struct SharedAccess
{
    std::uint64_t blockIndex = 0; //!< index into the shared pool
    bool isWrite = false;
};

/** Per-processor generator of shared accesses. */
class SharedModel
{
  public:
    virtual ~SharedModel() = default;

    /** Produce the next shared access for this processor. */
    virtual SharedAccess next(Rng &rng) = 0;
};

/**
 * Instantiate the pattern model configured in @p cfg for processor
 * @p proc. The returned model is independent of all other processors'
 * models (cross-processor sharing emerges from overlapping indices).
 */
std::unique_ptr<SharedModel> makeSharedModel(const WorkloadConfig &cfg,
                                             NodeId proc);

} // namespace ringsim::trace

#endif // RINGSIM_TRACE_PATTERNS_HPP
