/**
 * @file
 * Synthetic trace generation: the workload-to-reference-stream engine.
 *
 * Each processor's stream mixes, per WorkloadConfig:
 *  - instruction fetches (instrPerData per data reference; sequential
 *    walk of the processor's code region — they never miss, Section
 *    4.1, but they consume processor cycles);
 *  - private data references (Zipf-reuse working set plus a steerable
 *    cold/streaming fraction that sets the private miss rate);
 *  - shared data references produced by the benchmark's SharedModel.
 *
 * Streams are deterministic functions of (config, seed, processor).
 */

#ifndef RINGSIM_TRACE_GENERATOR_HPP
#define RINGSIM_TRACE_GENERATOR_HPP

#include <memory>

#include "trace/address_map.hpp"
#include "trace/patterns.hpp"
#include "trace/stream.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"

namespace ringsim::trace {

/** Build the address map a workload's streams are laid out for. */
AddressMap makeAddressMap(const WorkloadConfig &cfg);

/** One processor's synthetic reference stream. */
class SyntheticStream : public RefStream
{
  public:
    /**
     * @param cfg workload description.
     * @param map address map (must outlive the stream).
     * @param proc this stream's processor id.
     */
    SyntheticStream(const WorkloadConfig &cfg, const AddressMap &map,
                    NodeId proc);

    bool next(TraceRecord &out) override;

    /** Data references emitted so far. */
    Count dataEmitted() const { return dataEmitted_; }

  private:
    /** Next private-data block index for this processor. */
    std::uint64_t nextPrivateBlock();

    WorkloadConfig cfg_;
    const AddressMap &map_;
    NodeId proc_;
    Rng rng_;
    std::unique_ptr<SharedModel> sharedModel_;

    Count dataEmitted_ = 0;
    double instrDebt_ = 0.0;
    std::uint64_t codeCursor_ = 0;
    std::uint64_t privateStreamCursor_ = 0;
    std::uint64_t warmCursor_ = 0;

    /** Code loop length in blocks (fetch stream wraps around it). */
    static constexpr std::uint64_t codeLoopBlocks = 1024;
};

/** Build all per-processor streams of a workload. */
TraceSet makeTraceSet(const WorkloadConfig &cfg, const AddressMap &map);

} // namespace ringsim::trace

#endif // RINGSIM_TRACE_GENERATOR_HPP
