#include "stream.hpp"

namespace ringsim::trace {

std::vector<TraceRecord>
drain(RefStream &stream, size_t limit)
{
    std::vector<TraceRecord> out;
    TraceRecord rec;
    while (out.size() < limit && stream.next(rec))
        out.push_back(rec);
    return out;
}

} // namespace ringsim::trace
