#include "address_map.hpp"

#include "util/logging.hpp"

namespace ringsim::trace {

namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

AddressMap::AddressMap(unsigned nodes, size_t block_bytes,
                       std::uint64_t seed)
    : nodes_(nodes), blockBytes_(block_bytes), seed_(seed)
{
    if (nodes == 0)
        fatal("AddressMap needs at least one node");
    if (block_bytes == 0 || (block_bytes & (block_bytes - 1)) != 0)
        fatal("AddressMap block size must be a power of two");
}

Addr
AddressMap::sharedBlock(std::uint64_t index) const
{
    return sharedBase + index * blockBytes_;
}

Addr
AddressMap::privateBlock(NodeId p, std::uint64_t index) const
{
    if (p >= nodes_)
        panic("privateBlock: node %u out of range", p);
    return privateBase + static_cast<Addr>(p) * regionStride +
           index * blockBytes_;
}

Addr
AddressMap::codeBlock(NodeId p, std::uint64_t index) const
{
    if (p >= nodes_)
        panic("codeBlock: node %u out of range", p);
    return codeBase + static_cast<Addr>(p) * regionStride +
           index * blockBytes_;
}

bool
AddressMap::isShared(Addr addr) const
{
    return addr >= sharedBase && addr < privateBase;
}

bool
AddressMap::isPrivate(Addr addr) const
{
    return addr >= privateBase && addr < codeBase;
}

NodeId
AddressMap::home(Addr addr) const
{
    if (isShared(addr)) {
        // The paper allocates shared pages randomly among the nodes.
        // Real traces spread shared data over thousands of pages; the
        // synthetic pools are compact, so page-granular hashing would
        // concentrate every home on a handful of nodes (hot memory
        // banks the 1993 systems did not have). Hashing at block
        // granularity reproduces the statistics of random page
        // placement over a large heap.
        Addr block = addr / blockBytes_;
        return static_cast<NodeId>(mix64(block ^ seed_) % nodes_);
    }
    if (addr >= privateBase) {
        // Private data and code live on the owner's partition.
        Addr offset = addr - (isPrivate(addr) ? privateBase : codeBase);
        NodeId owner = static_cast<NodeId>(offset / regionStride);
        if (owner >= nodes_)
            panic("address %llx beyond the last node's region",
                  static_cast<unsigned long long>(addr));
        return owner;
    }
    // Anything below the shared base (not produced by the generators)
    // is hashed like a shared page so ad-hoc tests still work.
    return static_cast<NodeId>(mix64((addr / pageBytes) ^ seed_) % nodes_);
}

} // namespace ringsim::trace
