#include "trace_file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/logging.hpp"

namespace ringsim::trace {

namespace {

constexpr char magic[4] = {'R', 'N', 'G', 'T'};
constexpr std::uint32_t version = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
writeAll(std::FILE *f, const void *data, size_t bytes)
{
    return std::fwrite(data, 1, bytes, f) == bytes;
}

bool
readAll(std::FILE *f, void *data, size_t bytes)
{
    return std::fread(data, 1, bytes, f) == bytes;
}

} // namespace

bool
writeTraceFile(const std::string &path, const MaterializedTrace &trace)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }

    auto procs = static_cast<std::uint32_t>(trace.size());
    if (!writeAll(f.get(), magic, sizeof(magic)) ||
        !writeAll(f.get(), &version, sizeof(version)) ||
        !writeAll(f.get(), &procs, sizeof(procs))) {
        warn("short write to '%s'", path.c_str());
        return false;
    }
    for (const auto &stream : trace) {
        std::uint64_t count = stream.size();
        if (!writeAll(f.get(), &count, sizeof(count))) {
            warn("short write to '%s'", path.c_str());
            return false;
        }
    }
    for (const auto &stream : trace) {
        for (const TraceRecord &rec : stream) {
            std::uint64_t addr = rec.addr;
            auto op = static_cast<std::uint8_t>(rec.op);
            if (!writeAll(f.get(), &addr, sizeof(addr)) ||
                !writeAll(f.get(), &op, sizeof(op))) {
                warn("short write to '%s'", path.c_str());
                return false;
            }
        }
    }
    return true;
}

MaterializedTrace
readTraceFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());

    char got_magic[4];
    std::uint32_t got_version = 0;
    std::uint32_t procs = 0;
    if (!readAll(f.get(), got_magic, sizeof(got_magic)) ||
        !readAll(f.get(), &got_version, sizeof(got_version)) ||
        !readAll(f.get(), &procs, sizeof(procs))) {
        fatal("trace file '%s': truncated header", path.c_str());
    }
    if (std::memcmp(got_magic, magic, sizeof(magic)) != 0)
        fatal("trace file '%s': bad magic", path.c_str());
    if (got_version != version) {
        fatal("trace file '%s': version %u, expected %u", path.c_str(),
              got_version, version);
    }

    std::vector<std::uint64_t> counts(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        if (!readAll(f.get(), &counts[p], sizeof(counts[p])))
            fatal("trace file '%s': truncated counts", path.c_str());
    }

    MaterializedTrace trace(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        trace[p].reserve(counts[p]);
        for (std::uint64_t i = 0; i < counts[p]; ++i) {
            std::uint64_t addr = 0;
            std::uint8_t op = 0;
            if (!readAll(f.get(), &addr, sizeof(addr)) ||
                !readAll(f.get(), &op, sizeof(op))) {
                fatal("trace file '%s': truncated records", path.c_str());
            }
            if (op > static_cast<std::uint8_t>(Op::Instr))
                fatal("trace file '%s': bad op %u", path.c_str(), op);
            trace[p].push_back(
                TraceRecord{static_cast<Op>(op), addr});
        }
    }
    return trace;
}

TraceSet
toStreams(MaterializedTrace trace)
{
    TraceSet set;
    set.reserve(trace.size());
    for (auto &records : trace)
        set.push_back(std::make_unique<VectorStream>(std::move(records)));
    return set;
}

MaterializedTrace
materialize(TraceSet &set, size_t per_proc_limit)
{
    MaterializedTrace trace;
    trace.reserve(set.size());
    for (auto &stream : set)
        trace.push_back(drain(*stream, per_proc_limit));
    return trace;
}

} // namespace ringsim::trace
