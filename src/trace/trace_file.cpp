#include "trace_file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/logging.hpp"

namespace ringsim::trace {

namespace {

constexpr char magic[4] = {'R', 'N', 'G', 'T'};
constexpr std::uint32_t version = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool
writeAll(std::FILE *f, const void *data, size_t bytes)
{
    return std::fwrite(data, 1, bytes, f) == bytes;
}

bool
readAll(std::FILE *f, void *data, size_t bytes)
{
    return std::fread(data, 1, bytes, f) == bytes;
}

} // namespace

bool
writeTraceFile(const std::string &path, const MaterializedTrace &trace)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }

    auto procs = static_cast<std::uint32_t>(trace.size());
    if (!writeAll(f.get(), magic, sizeof(magic)) ||
        !writeAll(f.get(), &version, sizeof(version)) ||
        !writeAll(f.get(), &procs, sizeof(procs))) {
        warn("short write to '%s'", path.c_str());
        return false;
    }
    for (const auto &stream : trace) {
        std::uint64_t count = stream.size();
        if (!writeAll(f.get(), &count, sizeof(count))) {
            warn("short write to '%s'", path.c_str());
            return false;
        }
    }
    for (const auto &stream : trace) {
        for (const TraceRecord &rec : stream) {
            std::uint64_t addr = rec.addr;
            auto op = static_cast<std::uint8_t>(rec.op);
            if (!writeAll(f.get(), &addr, sizeof(addr)) ||
                !writeAll(f.get(), &op, sizeof(op))) {
                warn("short write to '%s'", path.c_str());
                return false;
            }
        }
    }
    return true;
}

bool
tryReadTraceFile(const std::string &path, MaterializedTrace *out,
                 std::string *error)
{
    auto fail = [&](std::string msg) {
        if (error)
            *error = std::move(msg);
        return false;
    };

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return fail(strprintf("cannot open trace file '%s'",
                              path.c_str()));

    // File size first: every later length check compares against it.
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return fail(strprintf("trace file '%s': cannot seek",
                              path.c_str()));
    long end = std::ftell(f.get());
    if (end < 0)
        return fail(strprintf("trace file '%s': cannot tell",
                              path.c_str()));
    std::rewind(f.get());
    auto file_bytes = static_cast<std::uint64_t>(end);

    char got_magic[4];
    std::uint32_t got_version = 0;
    std::uint32_t procs = 0;
    constexpr std::uint64_t header_bytes =
        sizeof(magic) + sizeof(version) + sizeof(procs);
    if (!readAll(f.get(), got_magic, sizeof(got_magic)) ||
        !readAll(f.get(), &got_version, sizeof(got_version)) ||
        !readAll(f.get(), &procs, sizeof(procs))) {
        return fail(strprintf(
            "trace file '%s': truncated header (expected %llu bytes, "
            "file has %llu)",
            path.c_str(),
            static_cast<unsigned long long>(header_bytes),
            static_cast<unsigned long long>(file_bytes)));
    }
    if (std::memcmp(got_magic, magic, sizeof(magic)) != 0)
        return fail(strprintf("trace file '%s': bad magic at offset 0",
                              path.c_str()));
    if (got_version != version) {
        return fail(strprintf(
            "trace file '%s': version %u, expected %u", path.c_str(),
            got_version, version));
    }

    // Count table, with an up-front length check so a corrupt
    // processor count fails here instead of in a giant allocation.
    std::uint64_t counts_bytes =
        static_cast<std::uint64_t>(procs) * sizeof(std::uint64_t);
    if (file_bytes < header_bytes + counts_bytes) {
        return fail(strprintf(
            "trace file '%s': truncated counts (header promises %u "
            "processors needing %llu bytes at offset %llu, file has "
            "%llu bytes)",
            path.c_str(), procs,
            static_cast<unsigned long long>(counts_bytes),
            static_cast<unsigned long long>(header_bytes),
            static_cast<unsigned long long>(file_bytes)));
    }
    std::vector<std::uint64_t> counts(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        if (!readAll(f.get(), &counts[p], sizeof(counts[p])))
            return fail(strprintf("trace file '%s': truncated counts",
                                  path.c_str()));
    }

    // Cross-check the promised record payload against the file size
    // BEFORE reserving anything: a corrupt count can promise 2^60
    // records, and the only safe response is a structured error.
    constexpr std::uint64_t record_bytes =
        sizeof(std::uint64_t) + sizeof(std::uint8_t);
    std::uint64_t total_records = 0;
    for (std::uint32_t p = 0; p < procs; ++p) {
        if (counts[p] > file_bytes / record_bytes ||
            total_records > file_bytes) {
            return fail(strprintf(
                "trace file '%s': corrupt count for processor %u "
                "(%llu records cannot fit in a %llu-byte file)",
                path.c_str(), p,
                static_cast<unsigned long long>(counts[p]),
                static_cast<unsigned long long>(file_bytes)));
        }
        total_records += counts[p];
    }
    std::uint64_t expected_bytes =
        header_bytes + counts_bytes + total_records * record_bytes;
    if (file_bytes != expected_bytes) {
        return fail(strprintf(
            "trace file '%s': %s (header promises %llu records = %llu "
            "bytes total, file has %llu bytes)",
            path.c_str(),
            file_bytes < expected_bytes ? "truncated records"
                                        : "trailing garbage",
            static_cast<unsigned long long>(total_records),
            static_cast<unsigned long long>(expected_bytes),
            static_cast<unsigned long long>(file_bytes)));
    }

    MaterializedTrace trace(procs);
    std::uint64_t offset = header_bytes + counts_bytes;
    for (std::uint32_t p = 0; p < procs; ++p) {
        trace[p].reserve(counts[p]);
        for (std::uint64_t i = 0; i < counts[p]; ++i) {
            std::uint64_t addr = 0;
            std::uint8_t op = 0;
            if (!readAll(f.get(), &addr, sizeof(addr)) ||
                !readAll(f.get(), &op, sizeof(op))) {
                return fail(strprintf(
                    "trace file '%s': truncated records (processor %u "
                    "record %llu at offset %llu)",
                    path.c_str(), p,
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(offset)));
            }
            if (op > static_cast<std::uint8_t>(Op::Instr)) {
                return fail(strprintf(
                    "trace file '%s': bad op %u (processor %u record "
                    "%llu at offset %llu)",
                    path.c_str(), op, p,
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(offset)));
            }
            trace[p].push_back(
                TraceRecord{static_cast<Op>(op), addr});
            offset += record_bytes;
        }
    }
    *out = std::move(trace);
    return true;
}

MaterializedTrace
readTraceFile(const std::string &path)
{
    MaterializedTrace trace;
    std::string error;
    if (!tryReadTraceFile(path, &trace, &error))
        fatal("%s", error.c_str());
    return trace;
}

TraceSet
toStreams(MaterializedTrace trace)
{
    TraceSet set;
    set.reserve(trace.size());
    for (auto &records : trace)
        set.push_back(std::make_unique<VectorStream>(std::move(records)));
    return set;
}

MaterializedTrace
materialize(TraceSet &set, size_t per_proc_limit)
{
    MaterializedTrace trace;
    trace.reserve(set.size());
    for (auto &stream : set)
        trace.push_back(drain(*stream, per_proc_limit));
    return trace;
}

} // namespace ringsim::trace
