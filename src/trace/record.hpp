/**
 * @file
 * The unit of trace-driven simulation: one memory reference.
 */

#ifndef RINGSIM_TRACE_RECORD_HPP
#define RINGSIM_TRACE_RECORD_HPP

#include <cstdint>

#include "util/units.hpp"

namespace ringsim::trace {

/** Reference type. */
enum class Op : std::uint8_t {
    Read,  //!< data load
    Write, //!< data store
    Instr, //!< instruction fetch (never misses, per Section 4.1)
};

/** Printable name of an op. */
inline const char *
opName(Op op)
{
    switch (op) {
      case Op::Read:
        return "R";
      case Op::Write:
        return "W";
      case Op::Instr:
        return "I";
    }
    return "?";
}

/** One memory reference of one processor. */
struct TraceRecord
{
    Op op = Op::Read;
    Addr addr = 0;

    bool isData() const { return op != Op::Instr; }
    bool isWrite() const { return op == Op::Write; }
};

} // namespace ringsim::trace

#endif // RINGSIM_TRACE_RECORD_HPP
