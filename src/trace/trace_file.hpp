/**
 * @file
 * Binary trace file I/O.
 *
 * Generated traces can be materialized to disk so a run can be
 * repeated bit-exactly without re-generation, shared between tools, or
 * inspected offline. Format: a fixed header (magic, version, processor
 * count, per-processor record counts) followed by each processor's
 * records packed as {u64 address, u8 op}.
 */

#ifndef RINGSIM_TRACE_TRACE_FILE_HPP
#define RINGSIM_TRACE_TRACE_FILE_HPP

#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/stream.hpp"

namespace ringsim::trace {

/** A fully materialized multi-processor trace. */
using MaterializedTrace = std::vector<std::vector<TraceRecord>>;

/**
 * Write @p trace to @p path.
 * @return true on success; false (with a warn) on I/O failure.
 */
bool writeTraceFile(const std::string &path,
                    const MaterializedTrace &trace);

/**
 * Read a trace file written by writeTraceFile().
 * fatal()s on malformed input; returns an empty trace only for an
 * empty file written with zero processors.
 */
MaterializedTrace readTraceFile(const std::string &path);

/**
 * Non-fatal variant of readTraceFile(): on success fills @p out and
 * returns true; on malformed or truncated input returns false and
 * fills @p error with a diagnostic naming the byte offset and the
 * expected vs. actual sizes. The header's record counts are
 * cross-checked against the file size *before* any allocation, so a
 * corrupt count cannot trigger a huge reserve or a read past the end.
 */
[[nodiscard]] bool tryReadTraceFile(const std::string &path, MaterializedTrace *out,
                      std::string *error);

/** Wrap a materialized trace as a TraceSet of VectorStreams. */
TraceSet toStreams(MaterializedTrace trace);

/** Materialize every stream of @p set (drains the streams). */
MaterializedTrace materialize(TraceSet &set,
                              size_t per_proc_limit = ~size_t(0));

} // namespace ringsim::trace

#endif // RINGSIM_TRACE_TRACE_FILE_HPP
