#include "experiment_runner.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace ringsim::runner {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("RINGSIM_JOBS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
        warn("ignoring invalid RINGSIM_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
resolveJobs(unsigned requested)
{
    return requested ? requested : defaultJobs();
}

std::uint64_t
jobSeed(std::uint64_t master_seed, std::uint64_t job_key)
{
    // splitmix64 over the combined words; bit-stable everywhere.
    std::uint64_t z = master_seed + 0x9e3779b97f4a7c15ULL * (job_key + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
    if (jobs_ > 1) {
        workers_.reserve(jobs_);
        for (unsigned i = 0; i < jobs_; ++i)
            workers_.emplace_back([this]() { workerLoop(); });
    }
}

ExperimentRunner::~ExperimentRunner()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock,
                      [this]() { return completed_ == submitted_; });
        shutdown_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::size_t
ExperimentRunner::submit(std::function<void()> job)
{
    std::size_t index;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        index = submitted_++;
        errors_.emplace_back();
    }
    if (workers_.empty()) {
        // Serial fallback: run inline, deterministically, right now.
        runJob(job, index);
        return index;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.emplace_back(std::move(job), index);
    }
    workReady_.notify_one();
    return index;
}

void
ExperimentRunner::runJob(std::function<void()> &job, std::size_t index)
{
    std::exception_ptr error;
    try {
        job();
    } catch (...) {
        error = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error)
            errors_[index] = error;
        ++completed_;
    }
    allDone_.notify_all();
}

void
ExperimentRunner::workerLoop()
{
    for (;;) {
        std::pair<std::function<void()>, std::size_t> item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this]() {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutdown with drained queue
            item = std::move(queue_.front());
            queue_.pop_front();
        }
        runJob(item.first, item.second);
    }
}

void
ExperimentRunner::rethrowFirstError()
{
    for (std::exception_ptr &error : errors_) {
        if (error) {
            std::exception_ptr e = error;
            error = nullptr;
            std::rethrow_exception(e);
        }
    }
}

void
ExperimentRunner::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this]() { return completed_ == submitted_; });
    lock.unlock();
    // All workers are idle now; errors_ is stable without the lock.
    rethrowFirstError();
}

} // namespace ringsim::runner
