#include "experiment_runner.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/thread_annotations.hpp"
#include "util/env.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace ringsim::runner {

unsigned
defaultJobs()
{
    if (auto v = util::envU64("RINGSIM_JOBS", 1))
        return static_cast<unsigned>(*v);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::chrono::milliseconds
watchdogBudget(std::chrono::milliseconds fallback_ms)
{
    // Zero is a meaningful setting (watchdog disabled), so it must be
    // accepted from the environment just like from --watchdog-ms.
    if (auto v = util::envU64("RINGSIM_WATCHDOG_MS"))
        return std::chrono::milliseconds(*v);
    return fallback_ms;
}

std::vector<std::string>
RunPolicy::check() const
{
    std::vector<std::string> errors;
    if (maxAttempts == 0)
        errors.push_back(
            "maxAttempts = 0: a job needs at least one attempt");
    if (jobTimeout.count() < 0)
        errors.push_back(strprintf(
            "jobTimeout = %lld ms: watchdog budget cannot be negative",
            static_cast<long long>(jobTimeout.count())));
    return errors;
}

unsigned
resolveJobs(unsigned requested)
{
    return requested ? requested : defaultJobs();
}

std::uint64_t
jobSeed(std::uint64_t master_seed, std::uint64_t job_key)
{
    // splitmix64 over the combined words; bit-stable everywhere.
    std::uint64_t z = master_seed + 0x9e3779b97f4a7c15ULL * (job_key + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

const char *
jobStatusName(JobReport::Status s)
{
    switch (s) {
      case JobReport::Status::Ok:
        return "ok";
      case JobReport::Status::Failed:
        return "failed";
      case JobReport::Status::TimedOut:
        return "timed_out";
    }
    return "?";
}

std::string
failureSummaryJson(const std::vector<JobReport> &reports)
{
    std::size_t failed = 0;
    for (const JobReport &r : reports)
        if (r.status != JobReport::Status::Ok)
            ++failed;
    std::string out = strprintf(
        "{\"jobs\": %zu, \"failed\": %zu, \"failures\": [",
        reports.size(), failed);
    bool first = true;
    for (const JobReport &r : reports) {
        if (r.status == JobReport::Status::Ok)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += strprintf(
            "{\"index\": %zu, \"status\": \"%s\", \"attempts\": %u, "
            "\"seconds\": %.3f, \"error\": \"%s\"}",
            r.index, jobStatusName(r.status), r.attempts, r.seconds,
            util::jsonEscape(r.error).c_str());
    }
    out += "]}";
    return out;
}

/**
 * Pool state shared by the runner facade, its workers and the
 * watchdog. Held by shared_ptr everywhere so a doomed worker that is
 * stuck inside a job can outlive the pool and still shut down cleanly
 * whenever its job finally returns.
 */
struct ExperimentRunner::Impl
    : std::enable_shared_from_this<ExperimentRunner::Impl>
{
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /**
     * One worker thread's bookkeeping. jobIndex/jobStart/doomed are
     * guarded by the owning Impl's mutex (thread-safety analysis
     * cannot express GUARDED_BY across an outer object's lock, so
     * the discipline is enforced by review and TSan here).
     */
    struct WorkerCell
    {
        std::thread thread;
        /** Index of the running job; npos when idle. */
        std::size_t jobIndex = npos;
        std::chrono::steady_clock::time_point jobStart;
        /** Set by the watchdog: the worker must exit, unaccounted. */
        bool doomed = false;
    };

    unsigned jobs;
    RunPolicy policy;

    mutable core::Mutex mutex;
    std::condition_variable workReady;
    std::condition_variable allDone;
    std::deque<std::pair<std::function<void()>, std::size_t>> queue
        GUARDED_BY(mutex);
    /** Slot per submission. */
    std::vector<std::exception_ptr> errors GUARDED_BY(mutex);
    /** Slot per submission. */
    std::vector<JobReport> reports GUARDED_BY(mutex);
    std::size_t submitted GUARDED_BY(mutex) = 0;
    std::size_t completed GUARDED_BY(mutex) = 0;
    bool shutdown GUARDED_BY(mutex) = false;

    std::vector<std::shared_ptr<WorkerCell>> workers
        GUARDED_BY(mutex);
    /** Set once in start(), joined in stop(); never raced. */
    std::thread watchdog;
    bool watchdogStop GUARDED_BY(mutex) = false;
    std::condition_variable watchdogWake;

    void
    start() EXCLUDES(mutex)
    {
        if (jobs <= 1)
            return;
        core::MutexLock lock(mutex);
        for (unsigned i = 0; i < jobs; ++i)
            spawnWorkerLocked();
        if (policy.jobTimeout.count() > 0) {
            auto self = shared_from_this();
            watchdog = std::thread([self]() { self->watchdogLoop(); });
        }
    }

    void
    spawnWorkerLocked() REQUIRES(mutex)
    {
        auto cell = std::make_shared<WorkerCell>();
        auto self = shared_from_this();
        cell->thread =
            std::thread([self, cell]() { self->workerLoop(*cell); });
        workers.push_back(std::move(cell));
    }

    void
    workerLoop(WorkerCell &cell) EXCLUDES(mutex)
    {
        for (;;) {
            std::pair<std::function<void()>, std::size_t> item;
            {
                core::UniqueLock lock(mutex);
                while (!shutdown && queue.empty())
                    workReady.wait(lock.native());
                if (queue.empty() || cell.doomed)
                    return; // shutdown with drained queue
                item = std::move(queue.front());
                queue.pop_front();
                cell.jobIndex = item.second;
                cell.jobStart = std::chrono::steady_clock::now();
            }
            runJob(item.first, item.second, &cell);
            {
                core::MutexLock lock(mutex);
                if (cell.doomed) {
                    // The watchdog already declared this job timed out
                    // and replaced this worker; exit without touching
                    // the pool accounting again.
                    return;
                }
            }
        }
    }

    void
    runJob(std::function<void()> &job, std::size_t index,
           WorkerCell *cell) EXCLUDES(mutex)
    {
        auto t0 = std::chrono::steady_clock::now();
        std::exception_ptr error;
        std::string what;
        try {
            job();
        } catch (const std::exception &e) {
            error = std::current_exception();
            what = e.what();
        } catch (...) {
            error = std::current_exception();
            what = "unknown exception";
        }
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        {
            core::MutexLock lock(mutex);
            // Going idle must be atomic with the completion
            // accounting: if jobIndex were cleared in a later locked
            // section (as the worker loop once did), the watchdog
            // could doom this already-counted job in the window and
            // double-increment completed — completed > submitted
            // makes waitDrained() hang forever.
            if (cell)
                cell->jobIndex = npos;
            if (cell && cell->doomed)
                return; // abandoned attempt; already accounted
            JobReport &rep = reports[index];
            rep.seconds = secs;
            if (error) {
                errors[index] = error;
                rep.status = JobReport::Status::Failed;
                rep.error = what;
            }
            ++completed;
        }
        allDone.notify_all();
    }

    void
    watchdogLoop() EXCLUDES(mutex)
    {
        // Poll at a fraction of the budget: detection latency stays a
        // small multiple of the timeout without busy-waiting.
        auto poll = policy.jobTimeout / 8;
        if (poll < std::chrono::milliseconds(1))
            poll = std::chrono::milliseconds(1);
        core::UniqueLock lock(mutex);
        while (!watchdogStop) {
            watchdogWake.wait_for(lock.native(), poll);
            if (watchdogStop)
                return;
            auto now = std::chrono::steady_clock::now();
            for (std::size_t w = 0; w < workers.size(); ++w) {
                WorkerCell &cell = *workers[w];
                if (cell.doomed || cell.jobIndex == npos)
                    continue;
                if (now - cell.jobStart < policy.jobTimeout)
                    continue;
                doomWorkerLocked(cell, now);
            }
        }
    }

    /** Declare @p cell's job timed out; replace the worker. The
     *  stuck thread is detached — it cannot be interrupted, only
     *  abandoned — and exits on its own if the job ever returns. */
    void
    doomWorkerLocked(WorkerCell &cell,
                     std::chrono::steady_clock::time_point now)
        REQUIRES(mutex)
    {
        std::size_t index = cell.jobIndex;
        double secs =
            std::chrono::duration<double>(now - cell.jobStart).count();
        std::string msg = strprintf(
            "job %zu timed out after %.3f s (budget %lld ms)", index,
            secs,
            static_cast<long long>(policy.jobTimeout.count()));
        JobReport &rep = reports[index];
        rep.status = JobReport::Status::TimedOut;
        rep.error = msg;
        rep.seconds = secs;
        errors[index] =
            std::make_exception_ptr(std::runtime_error(msg));
        ++completed;
        cell.doomed = true;
        cell.thread.detach();
        spawnWorkerLocked();
        allDone.notify_all();
    }

    void
    waitDrained() EXCLUDES(mutex)
    {
        core::UniqueLock lock(mutex);
        while (completed != submitted)
            allDone.wait(lock.native());
    }

    void
    stop() EXCLUDES(mutex)
    {
        waitDrained();
        std::vector<std::shared_ptr<WorkerCell>> to_join;
        {
            core::MutexLock lock(mutex);
            shutdown = true;
            watchdogStop = true;
            // Join outside the lock: a worker still parked on
            // workReady needs the mutex to wake, and the watchdog
            // (pre-stop) could grow `workers` mid-iteration.
            to_join = workers;
        }
        workReady.notify_all();
        watchdogWake.notify_all();
        // Joinable = never doomed (doomed threads were detached).
        for (auto &cell : to_join)
            if (cell->thread.joinable())
                cell->thread.join();
        if (watchdog.joinable())
            watchdog.join();
    }
};

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : ExperimentRunner(jobs, RunPolicy{})
{
}

ExperimentRunner::ExperimentRunner(unsigned jobs,
                                   const RunPolicy &policy)
    : impl_(std::make_shared<Impl>())
{
    impl_->jobs = resolveJobs(jobs);
    impl_->policy = policy;
    impl_->start();
}

ExperimentRunner::~ExperimentRunner()
{
    impl_->stop();
}

unsigned
ExperimentRunner::jobs() const
{
    return impl_->jobs;
}

std::size_t
ExperimentRunner::submit(std::function<void()> job)
{
    Impl &s = *impl_;
    std::size_t index;
    {
        core::MutexLock lock(s.mutex);
        index = s.submitted++;
        s.errors.emplace_back();
        s.reports.emplace_back();
        s.reports.back().index = index;
    }
    if (s.jobs <= 1) {
        // Serial fallback: run inline, deterministically, right now.
        s.runJob(job, index, nullptr);
        return index;
    }
    {
        core::MutexLock lock(s.mutex);
        s.queue.emplace_back(std::move(job), index);
    }
    s.workReady.notify_one();
    return index;
}

void
ExperimentRunner::waitAll()
{
    impl_->waitDrained();
}

std::vector<JobReport>
ExperimentRunner::reports() const
{
    core::MutexLock lock(impl_->mutex);
    return impl_->reports;
}

void
ExperimentRunner::wait()
{
    impl_->waitDrained();
    // A doomed straggler can still reach its accounting section
    // after the drain observes completed == submitted, so `errors`
    // is only stable under the lock. Extract the earliest failure
    // there and rethrow outside it.
    std::exception_ptr first;
    {
        core::MutexLock lock(impl_->mutex);
        for (std::exception_ptr &error : impl_->errors) {
            if (error) {
                first = error;
                error = nullptr;
                break;
            }
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace ringsim::runner
