/**
 * @file
 * Parallel experiment runner.
 *
 * The paper's hybrid methodology is embarrassingly parallel: each
 * figure or table sweeps dozens of independent (workload, protocol,
 * cycle-time) points, and every point is a self-contained job — it
 * owns its own sim::Kernel (or analytic-model evaluation), takes its
 * RNG seed deterministically from its inputs, and writes into a
 * result slot indexed by submission order. Because jobs share no
 * mutable state and results are consumed in submission order, a
 * parallel run is bit-identical to a serial one; only the wall clock
 * differs.
 *
 * Thread count resolution: an explicit count wins; 0 means "auto",
 * which reads the RINGSIM_JOBS environment variable and falls back to
 * the hardware concurrency. A count of 1 is a true serial fallback —
 * jobs execute inline on the caller's thread, no worker threads are
 * created.
 *
 * Hardened sweeps: runSweep() adds per-job wall-clock watchdogs,
 * failure isolation (a throwing or hung job marks its own slot failed
 * instead of killing the sweep), deterministic retry passes, and a
 * machine-readable failure summary. The legacy runAll()/wait() path
 * keeps its fail-fast rethrow semantics.
 */

#ifndef RINGSIM_RUNNER_EXPERIMENT_RUNNER_HPP
#define RINGSIM_RUNNER_EXPERIMENT_RUNNER_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ringsim::runner {

/**
 * Threads used when a caller passes jobs = 0: $RINGSIM_JOBS if set to
 * a positive integer, otherwise std::thread::hardware_concurrency()
 * (itself falling back to 1 if unknown).
 */
unsigned defaultJobs();

/** Resolve a requested job count: 0 → defaultJobs(), else unchanged. */
unsigned resolveJobs(unsigned requested);

/**
 * Derive a per-job RNG seed from a master seed and a job key
 * (splitmix64 mixing), so every job's stream is independent of, but
 * fully determined by, the master seed — regardless of which worker
 * thread runs the job or in what order.
 */
std::uint64_t jobSeed(std::uint64_t master_seed, std::uint64_t job_key);

/**
 * Watchdog budget resolution: $RINGSIM_WATCHDOG_MS if set (zero
 * disables the watchdog), otherwise @p fallback_ms. Lets operators
 * widen or disable per-job watchdogs on loaded machines where a
 * healthy sweep point can exceed a default budget — service jobs
 * and the hardened benches resolve their timeouts through this.
 */
std::chrono::milliseconds
watchdogBudget(std::chrono::milliseconds fallback_ms);

/** Failure-handling policy of a hardened run. */
struct RunPolicy
{
    /**
     * Wall-clock budget of one job attempt; zero disables the
     * watchdog. Only enforced when worker threads exist (a serial
     * jobs=1 run executes inline and cannot be interrupted).
     */
    std::chrono::milliseconds jobTimeout{0};

    /** Total attempts per job (>= 1); retries run in later passes. */
    unsigned maxAttempts = 1;

    /**
     * All misconfigurations, as human-readable "field = value"
     * messages (empty when the policy is sound).
     */
    [[nodiscard]] std::vector<std::string> check() const;
};

/** Outcome of one job slot. */
struct JobReport
{
    enum class Status {
        Ok,       //!< finished normally
        Failed,   //!< threw an exception
        TimedOut, //!< exceeded the per-job wall-clock budget
    };

    std::size_t index = 0; //!< submission index
    Status status = Status::Ok;
    std::string error;     //!< exception text / timeout note
    unsigned attempts = 1; //!< attempts consumed across retry passes
    double seconds = 0;    //!< wall clock of the last attempt
};

/** Printable status name ("ok", "failed", "timed_out"). */
const char *jobStatusName(JobReport::Status s);

/**
 * Render the failed slots of @p reports as a machine-readable JSON
 * object: {"jobs": N, "failed": K, "failures": [{"index": ...,
 * "status": ..., "attempts": ..., "seconds": ..., "error": ...}]}.
 */
std::string failureSummaryJson(const std::vector<JobReport> &reports);

/**
 * A fixed-size thread pool that runs void() jobs, remembers the first
 * exception in submission order, and — when a RunPolicy with a
 * timeout is supplied — dooms workers whose job exceeds its budget
 * (the stuck thread is detached and replaced; its slot reports
 * TimedOut and the pool keeps draining the queue).
 */
class ExperimentRunner
{
  public:
    /** @param jobs worker threads; 0 → defaultJobs(), 1 → inline. */
    explicit ExperimentRunner(unsigned jobs = 0);

    /** Hardened pool with the given failure policy. */
    ExperimentRunner(unsigned jobs, const RunPolicy &policy);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /** Resolved worker count (>= 1). */
    unsigned jobs() const;

    /**
     * Enqueue a job; returns its submission index. With jobs() == 1
     * the job runs inline before submit() returns.
     */
    std::size_t submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw
     * or timed out, rethrows the exception of the earliest-submitted
     * failing job (fail-fast legacy semantics).
     */
    void wait();

    /**
     * Block until every submitted job has finished (or was declared
     * timed out). Never throws on job failure — inspect reports().
     */
    void waitAll();

    /** Per-job outcomes, indexed by submission order (after waitAll). */
    std::vector<JobReport> reports() const;

  private:
    struct Impl;
    /** Shared so doomed (detached) workers can outlive the pool. */
    std::shared_ptr<Impl> impl_;
};

/**
 * Run every task (possibly in parallel), collecting results in
 * submission order. R must be default-constructible. This is the
 * deterministic fan-out primitive the benches are built on:
 *
 *   std::vector<std::function<core::RunResult()>> tasks = ...;
 *   auto results = runner::runAll(std::move(tasks), opt.jobs);
 */
template <typename R>
std::vector<R>
runAll(std::vector<std::function<R()>> tasks, unsigned jobs = 0)
{
    std::vector<R> results(tasks.size());
    ExperimentRunner pool(jobs);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        pool.submit([&results, &tasks, i]() {
            results[i] = tasks[i]();
        });
    }
    pool.wait();
    return results;
}

/** What a hardened sweep produced. */
template <typename R>
struct SweepResult
{
    /** Results in task order; failed slots keep a default R. */
    std::vector<R> results;

    /** Per-slot outcomes in task order. */
    std::vector<JobReport> reports;

    std::size_t failures() const
    {
        std::size_t n = 0;
        for (const JobReport &r : reports)
            if (r.status != JobReport::Status::Ok)
                ++n;
        return n;
    }

    bool allOk() const { return failures() == 0; }

    /** Machine-readable summary of the failed slots. */
    std::string failureSummaryJson() const
    {
        return runner::failureSummaryJson(reports);
    }
};

/**
 * Hardened fan-out: run every task under @p policy, isolating
 * failures to their own slot and retrying failed/timed-out slots in
 * deterministic later passes (each retry pass uses a fresh pool, so a
 * pass that doomed workers leaves no stale threads behind).
 *
 * Tasks must be safe to call again on retry, and — because a doomed
 * attempt's thread cannot be interrupted, only abandoned — safe to
 * run concurrently with their own earlier hung attempt. Each attempt
 * writes into its own heap-allocated cell; only the successful
 * attempt's cell is moved into the result slot, so a hung attempt
 * that eventually finishes mutates nothing the caller sees.
 */
template <typename R>
SweepResult<R>
runSweep(std::vector<std::function<R()>> tasks, unsigned jobs = 0,
         const RunPolicy &policy = {})
{
    const std::size_t n = tasks.size();
    SweepResult<R> sweep;
    sweep.results.resize(n);
    sweep.reports.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        sweep.reports[i].index = i;

    std::vector<std::size_t> pending(n);
    for (std::size_t i = 0; i < n; ++i)
        pending[i] = i;

    const unsigned max_attempts = policy.maxAttempts ? policy.maxAttempts
                                                     : 1;
    for (unsigned attempt = 1;
         attempt <= max_attempts && !pending.empty(); ++attempt) {
        ExperimentRunner pool(jobs, policy);
        std::vector<std::shared_ptr<R>> cells;
        cells.reserve(pending.size());
        for (std::size_t i : pending) {
            auto cell = std::make_shared<R>();
            cells.push_back(cell);
            std::function<R()> &task = tasks[i];
            pool.submit([cell, &task]() { *cell = task(); });
        }
        pool.waitAll();
        std::vector<JobReport> pass = pool.reports();

        std::vector<std::size_t> still_failing;
        for (std::size_t k = 0; k < pending.size(); ++k) {
            std::size_t i = pending[k];
            JobReport &rep = sweep.reports[i];
            rep.status = pass[k].status;
            rep.error = pass[k].error;
            rep.seconds = pass[k].seconds;
            rep.attempts = attempt;
            if (pass[k].status == JobReport::Status::Ok)
                sweep.results[i] = std::move(*cells[k]);
            else
                still_failing.push_back(i);
        }
        pending = std::move(still_failing);
    }
    return sweep;
}

} // namespace ringsim::runner

#endif // RINGSIM_RUNNER_EXPERIMENT_RUNNER_HPP
