/**
 * @file
 * Parallel experiment runner.
 *
 * The paper's hybrid methodology is embarrassingly parallel: each
 * figure or table sweeps dozens of independent (workload, protocol,
 * cycle-time) points, and every point is a self-contained job — it
 * owns its own sim::Kernel (or analytic-model evaluation), takes its
 * RNG seed deterministically from its inputs, and writes into a
 * result slot indexed by submission order. Because jobs share no
 * mutable state and results are consumed in submission order, a
 * parallel run is bit-identical to a serial one; only the wall clock
 * differs.
 *
 * Thread count resolution: an explicit count wins; 0 means "auto",
 * which reads the RINGSIM_JOBS environment variable and falls back to
 * the hardware concurrency. A count of 1 is a true serial fallback —
 * jobs execute inline on the caller's thread, no worker threads are
 * created.
 */

#ifndef RINGSIM_RUNNER_EXPERIMENT_RUNNER_HPP
#define RINGSIM_RUNNER_EXPERIMENT_RUNNER_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ringsim::runner {

/**
 * Threads used when a caller passes jobs = 0: $RINGSIM_JOBS if set to
 * a positive integer, otherwise std::thread::hardware_concurrency()
 * (itself falling back to 1 if unknown).
 */
unsigned defaultJobs();

/** Resolve a requested job count: 0 → defaultJobs(), else unchanged. */
unsigned resolveJobs(unsigned requested);

/**
 * Derive a per-job RNG seed from a master seed and a job key
 * (splitmix64 mixing), so every job's stream is independent of, but
 * fully determined by, the master seed — regardless of which worker
 * thread runs the job or in what order.
 */
std::uint64_t jobSeed(std::uint64_t master_seed, std::uint64_t job_key);

/**
 * A fixed-size thread pool that runs void() jobs and remembers the
 * first exception in submission order.
 */
class ExperimentRunner
{
  public:
    /** @param jobs worker threads; 0 → defaultJobs(), 1 → inline. */
    explicit ExperimentRunner(unsigned jobs = 0);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Enqueue a job; returns its submission index. With jobs() == 1
     * the job runs inline before submit() returns.
     */
    std::size_t submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the exception of the earliest-submitted failing job.
     */
    void wait();

  private:
    void workerLoop();
    void runJob(std::function<void()> &job, std::size_t index);
    void rethrowFirstError();

    unsigned jobs_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::deque<std::pair<std::function<void()>, std::size_t>> queue_;
    std::vector<std::exception_ptr> errors_; // slot per submission
    std::size_t submitted_ = 0;
    std::size_t completed_ = 0;
    bool shutdown_ = false;
};

/**
 * Run every task (possibly in parallel), collecting results in
 * submission order. R must be default-constructible. This is the
 * deterministic fan-out primitive the benches are built on:
 *
 *   std::vector<std::function<core::RunResult()>> tasks = ...;
 *   auto results = runner::runAll(std::move(tasks), opt.jobs);
 */
template <typename R>
std::vector<R>
runAll(std::vector<std::function<R()>> tasks, unsigned jobs = 0)
{
    std::vector<R> results(tasks.size());
    ExperimentRunner pool(jobs);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        pool.submit([&results, &tasks, i]() {
            results[i] = tasks[i]();
        });
    }
    pool.wait();
    return results;
}

} // namespace ringsim::runner

#endif // RINGSIM_RUNNER_EXPERIMENT_RUNNER_HPP
