/**
 * @file
 * Output record of the analytic models.
 */

#ifndef RINGSIM_MODEL_RESULT_HPP
#define RINGSIM_MODEL_RESULT_HPP

#include "util/units.hpp"

namespace ringsim::model {

/**
 * Documented accuracy envelope of the hybrid analytic model against
 * the exact simulator (the paper's own calibration: within ~15% on
 * utilization and latency across the studied configurations). The
 * experiment service attaches this bound to every model-tier
 * degraded answer so a client can judge whether an estimate is
 * adequate or the exact simulation must be awaited.
 */
inline constexpr double kModelErrorBound = 0.15;

/** One solved operating point. */
struct ModelResult
{
    /** Per-processor execution time of the census window, ns. */
    double execTimeNs = 0;

    /** Processor utilization (cpu work / execution time). */
    double procUtilization = 0;

    /** Ring slot or bus utilization. */
    double networkUtilization = 0;

    /** Mean remote-miss latency, ns. */
    double missLatencyNs = 0;

    /** Mean invalidation latency, ns. */
    double upgradeLatencyNs = 0;

    /** Fixed-point iterations used. */
    unsigned iterations = 0;

    /** True if the solver hit its iteration cap before converging. */
    bool saturated = false;
};

} // namespace ringsim::model

#endif // RINGSIM_MODEL_RESULT_HPP
