#include "bus_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace ringsim::model {

ModelResult
solveBus(const BusModelInput &input)
{
    const coherence::Census &census = input.census;
    const bus::BusConfig &bc = input.bus;
    const core::SystemConfig &sys = input.system;
    if (census.procs == 0)
        fatal("bus model needs a census with processors");
    if (bc.nodes != census.procs)
        fatal("bus model: census has %u procs, bus has %u nodes",
              census.procs, bc.nodes);

    const coherence::ProtocolCensus &pc = census.snoop;
    const double procs = census.procs;
    const double cyc = static_cast<double>(bc.clockPeriod);
    const double req = bc.requestCycles * cyc;
    const double resp = bc.responseCycles() * cyc;
    const double arb = bc.arbitrationCycles * cyc;

    const double mem = static_cast<double>(sys.memoryLatency);
    const double supply = static_cast<double>(sys.cacheSupply);
    const double cycle = static_cast<double>(sys.procCycle);

    const double n_local =
        static_cast<double>(pc.localMisses) / procs;
    const double n_clean = static_cast<double>(pc.cleanMiss1) / procs;
    const double n_dirty = static_cast<double>(pc.dirtyMiss1) / procs;

    // Tenure census over the window: every probe becomes a request
    // tenure; every block message becomes a response tenure (misses
    // and write-backs alike).
    const double req_count = static_cast<double>(pc.probes);
    const double resp_count = static_cast<double>(pc.blocks);

    const double cpu_work =
        (static_cast<double>(census.dataRefs()) +
         static_cast<double>(census.instrRefs)) /
        procs * cycle;

    // Closed single-queue network solved with Schweitzer approximate
    // MVA: the N processors are the customers, each alternating
    // between "think" time (compute plus memory/cache service, which
    // does not occupy the bus) and bus visits (tenures). AMVA is
    // exact in both limits — M/G/1-like at light load and
    // work-conserving saturation at overload — which the open-queue
    // formula is not (the processors' blocking closes the loop).
    const double procs_d = procs;
    const double visits = (req_count + resp_count) / procs_d;
    const double mean_tenure =
        req_count + resp_count > 0.0
            ? (req_count * req + resp_count * resp) /
                  (req_count + resp_count)
            : 0.0;
    // Non-bus time per processor per window.
    const double think = cpu_work + n_local * std::max(mem, arb + req) +
                         n_clean * mem + n_dirty * supply;

    ModelResult out;
    double wait = 0.0;
    double t_exec = cpu_work;
    double rho = 0.0;

    if (visits > 0.0 && mean_tenure > 0.0) {
        // Exact MVA recursion over the processor population: each
        // customer alternates between Z_v of think time (compute +
        // memory service) and one bus visit.
        double z_visit = think / visits;
        double q = 0.0;
        double x = 0.0;
        double r = mean_tenure;
        for (unsigned n = 1; n <= procs; ++n) {
            // Arbitration overlaps with waiting: it only shows when
            // the bus would otherwise be granted immediately.
            r = std::max(arb + mean_tenure,
                         mean_tenure * (1.0 + q));
            x = static_cast<double>(n) / (z_visit + r);
            q = x * r;
            out.iterations = n;
        }
        wait = std::max(0.0, r - arb - mean_tenure);
        rho = x * mean_tenure;
        t_exec = think + visits * r;
    } else {
        t_exec = think;
        out.iterations = 1;
    }
    out.saturated = rho > 0.95;

    double l_clean = (wait + arb + req) + mem + (wait + arb + resp);
    double l_dirty = (wait + arb + req) + supply + (wait + arb + resp);
    double n_remote = n_clean + n_dirty;

    out.execTimeNs = t_exec / tickNs;
    out.procUtilization = cpu_work / t_exec;
    out.networkUtilization = rho;
    out.missLatencyNs =
        n_remote > 0.0
            ? (n_clean * l_clean + n_dirty * l_dirty) / n_remote /
                  tickNs
            : 0.0;
    out.upgradeLatencyNs = (wait + arb + req) / tickNs;
    return out;
}

} // namespace ringsim::model
