#include "calibration.hpp"

#include "coherence/driver.hpp"

namespace ringsim::model {

coherence::Census
calibrate(const trace::WorkloadConfig &workload, double warmup_frac)
{
    coherence::DriverOptions options;
    options.warmupFrac = warmup_frac;
    options.geometry.blockBytes = workload.blockBytes;
    return coherence::runFunctional(workload, options);
}

} // namespace ringsim::model
