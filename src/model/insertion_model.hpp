/**
 * @file
 * Analytic model of a register-insertion ring, for the slotted-vs-
 * insertion comparison the paper poses but does not quantify
 * (Section 2: "Which one of slotted or register insertion rings
 * offers the best performance is not clear").
 *
 * Modeled in the style of Scott, Goodman & Vernon's SCI-ring analysis
 * (the paper's reference [16]): each node's output link is an M/G/1
 * server whose service time is a message's transmission time.
 * Messages insert immediately when the link is idle (no slot-residual
 * wait — the insertion ring's advantage at light load) and queue in
 * the bypass FIFO behind through-traffic as load grows (its
 * disadvantage: the 1/(1-rho) blow-up, on top of which the real SCI
 * starvation-avoidance mechanism costs extra throughput that we do
 * not charge — this model flatters register insertion).
 *
 * The comparison runs both access-control disciplines over the same
 * directory-protocol message census and ring geometry, so the only
 * difference is how bandwidth is granted.
 */

#ifndef RINGSIM_MODEL_INSERTION_MODEL_HPP
#define RINGSIM_MODEL_INSERTION_MODEL_HPP

#include "model/ring_model.hpp"

namespace ringsim::model {

/** Solve the register-insertion fixed point for one operating point.
 *  Input fields are interpreted exactly as for solveRing() (the frame
 *  structure only contributes message lengths, not slot timing). */
ModelResult solveInsertionRing(const RingModelInput &input);

} // namespace ringsim::model

#endif // RINGSIM_MODEL_INSERTION_MODEL_HPP
