#include "insertion_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace ringsim::model {

ModelResult
solveInsertionRing(const RingModelInput &input)
{
    if (input.protocol != RingProtocol::Directory) {
        fatal("register insertion cannot support snooping (paper "
              "Section 3.3); model only the directory protocol");
    }
    const coherence::Census &census = input.census;
    const ring::RingConfig &rc = input.ring;
    const core::SystemConfig &sys = input.system;
    if (census.procs == 0)
        fatal("insertion-ring model needs a census with processors");
    if (rc.nodes != census.procs)
        fatal("insertion-ring model: census has %u procs, ring has %u "
              "nodes", census.procs, rc.nodes);

    const coherence::ProtocolCensus &pc = census.fullMap;
    const double procs = census.procs;
    const double stages = rc.totalStages();
    const double t_ring = static_cast<double>(rc.clockPeriod);
    const double rtt = stages * t_ring;

    // Message transmission times (no slot framing: a message is just
    // its own length on the wire).
    const double probe_len = rc.frame.probeStages() * t_ring;
    const double block_len = rc.frame.blockSlotStages() * t_ring;
    const double tail_p = probe_len - t_ring;
    const double tail_b = block_len - t_ring;

    const double mem = static_cast<double>(sys.memoryLatency);
    const double lookup = static_cast<double>(sys.dirLookup);
    const double supply = static_cast<double>(sys.cacheSupply);
    const double cycle = static_cast<double>(sys.procCycle);

    const double n_local = static_cast<double>(pc.localMisses) / procs;
    const double n_clean1 = static_cast<double>(pc.cleanMiss1) / procs;
    const double n_dirty1 = static_cast<double>(pc.dirtyMiss1) / procs;
    const double n_two = static_cast<double>(pc.miss2) / procs;
    const double n_inv0 =
        static_cast<double>(pc.invTraversals[0]) / procs;
    const double n_inv1 =
        static_cast<double>(pc.invTraversals[1]) / procs;
    const double n_inv2 =
        static_cast<double>(pc.invTraversals[2] +
                            pc.invTraversals[3]) / procs;

    // Per-link load: a message of length L crossing k node-to-node
    // links occupies each of them for L; there are `procs` links.
    const double probe_linkcross = pc.probeHops; // total node hops
    const double block_linkcross = pc.blockHops;

    const double cpu_work =
        (static_cast<double>(census.dataRefs()) +
         static_cast<double>(census.instrRefs)) /
        procs * cycle;

    ModelResult out;
    double wait = 0.0; // bypass-FIFO insertion wait
    double t_exec = cpu_work;
    double rho = 0.0;

    for (unsigned iter = 0; iter < 2000; ++iter) {
        // Same directory paths as the slotted ring, with the slot
        // waits replaced by the insertion wait.
        double l_local = lookup + mem;
        double l_clean1 =
            wait + rtt + tail_p + lookup + mem + wait + tail_b;
        double l_dirty1 = 2.0 * wait + rtt + 2.0 * tail_p + lookup +
                          supply + wait + tail_b;
        double l_two = 2.0 * wait + 2.0 * rtt + 2.0 * tail_p + lookup +
                       0.5 * (mem + supply) + wait + tail_b;
        double l_inv0 = lookup;
        double l_inv1 = 2.0 * wait + rtt + tail_p + lookup;
        double l_inv2 = 3.0 * wait + 2.0 * rtt + 2.0 * tail_p + lookup;

        double stall = n_local * l_local + n_clean1 * l_clean1 +
                       n_dirty1 * l_dirty1 + n_two * l_two +
                       n_inv0 * l_inv0 + n_inv1 * l_inv1 +
                       n_inv2 * l_inv2;
        double t_new = cpu_work + stall;

        // M/G/1 per output link.
        double lam_link = (probe_linkcross + block_linkcross) /
                          (procs * t_new);
        double total_cross = probe_linkcross + block_linkcross;
        double es = total_cross > 0.0
            ? (probe_linkcross * probe_len +
               block_linkcross * block_len) / total_cross
            : 0.0;
        double es2 = total_cross > 0.0
            ? (probe_linkcross * probe_len * probe_len +
               block_linkcross * block_len * block_len) / total_cross
            : 0.0;
        double rho_new = lam_link * es;
        bool clamped = rho_new > 0.98;
        if (clamped)
            rho_new = 0.98;
        out.saturated = out.saturated || clamped;
        double wait_new =
            es > 0.0 ? rho_new * es2 / (2.0 * es * (1.0 - rho_new))
                     : 0.0;

        wait = 0.5 * wait + 0.5 * wait_new;
        rho = rho_new;

        out.iterations = iter + 1;
        if (std::abs(t_new - t_exec) <= 1e-9 * t_new) {
            t_exec = t_new;
            break;
        }
        t_exec = t_new;
    }

    double l_clean1 =
        wait + rtt + tail_p + lookup + mem + wait + tail_b;
    double l_dirty1 = 2.0 * wait + rtt + 2.0 * tail_p + lookup +
                      supply + wait + tail_b;
    double l_two = 2.0 * wait + 2.0 * rtt + 2.0 * tail_p + lookup +
                   0.5 * (mem + supply) + wait + tail_b;
    double n_remote = n_clean1 + n_dirty1 + n_two;
    double n_inv = n_inv0 + n_inv1 + n_inv2;

    out.execTimeNs = t_exec / tickNs;
    out.procUtilization = cpu_work / t_exec;
    out.networkUtilization = rho;
    out.missLatencyNs =
        n_remote > 0.0
            ? (n_clean1 * l_clean1 + n_dirty1 * l_dirty1 +
               n_two * l_two) / n_remote / tickNs
            : 0.0;
    out.upgradeLatencyNs =
        n_inv > 0.0
            ? (n_inv0 * (lookup) +
               n_inv1 * (2.0 * wait + rtt + tail_p + lookup) +
               n_inv2 * (3.0 * wait + 2.0 * rtt + 2.0 * tail_p +
                         lookup)) / n_inv / tickNs
            : 0.0;
    return out;
}

} // namespace ringsim::model
