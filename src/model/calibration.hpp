/**
 * @file
 * Calibration runs for the hybrid methodology.
 *
 * The paper simulates each benchmark once (50 MIPS processors) to
 * extract the coherence-event counts the analytic models consume
 * (Section 4.0). Event counts in a trace-driven blocking-processor
 * system are timing-independent, so one *functional* pass per
 * workload yields the same census far faster; the model/tests compare
 * it against timed-run censuses to confirm.
 */

#ifndef RINGSIM_MODEL_CALIBRATION_HPP
#define RINGSIM_MODEL_CALIBRATION_HPP

#include "coherence/census.hpp"
#include "trace/workload.hpp"

namespace ringsim::model {

/** Produce the calibration census of one workload. */
coherence::Census calibrate(const trace::WorkloadConfig &workload,
                            double warmup_frac = 0.3);

} // namespace ringsim::model

#endif // RINGSIM_MODEL_CALIBRATION_HPP
