/**
 * @file
 * Iterative analytic model of the split-transaction bus system.
 *
 * The bus is a single FCFS server; request and response tenures are
 * the two service classes. Waiting uses the M/G/1 mean-wait formula
 * on the tenure mix, iterated with the execution time exactly like the
 * ring model (blocking processors close the loop, so the fixed point
 * always settles below saturation).
 */

#ifndef RINGSIM_MODEL_BUS_MODEL_HPP
#define RINGSIM_MODEL_BUS_MODEL_HPP

#include "bus/split_bus.hpp"
#include "coherence/census.hpp"
#include "core/config.hpp"
#include "model/result.hpp"

namespace ringsim::model {

/** Inputs of one bus-model evaluation. */
struct BusModelInput
{
    /** Calibration census; the bus mirrors the snooping protocol. */
    coherence::Census census;

    /** Bus geometry and clocking. */
    bus::BusConfig bus;

    /** Service times and processor cycle. */
    core::SystemConfig system;
};

/** Solve the fixed point for one operating point. */
ModelResult solveBus(const BusModelInput &input);

} // namespace ringsim::model

#endif // RINGSIM_MODEL_BUS_MODEL_HPP
