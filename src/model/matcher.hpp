/**
 * @file
 * Bus-clock matcher for Table 4.
 *
 * Table 4 reports the bus clock cycle a 64-bit split-transaction bus
 * needs to reach the *same processor utilization* (same program
 * execution time) as a given slotted-ring configuration. Processor
 * utilization is monotone in the bus clock period, so a bisection on
 * the period solves it.
 */

#ifndef RINGSIM_MODEL_MATCHER_HPP
#define RINGSIM_MODEL_MATCHER_HPP

#include "model/bus_model.hpp"
#include "model/ring_model.hpp"

namespace ringsim::model {

/**
 * Find the bus clock period whose modeled processor utilization
 * matches @p target_util.
 *
 * @param input bus model input; its bus.clockPeriod is ignored.
 * @param target_util utilization to match (from the ring model).
 * @param lo_ns,hi_ns search bracket in nanoseconds.
 * @return matched bus period in nanoseconds; hi_ns when even the
 *         slowest bus exceeds the target, lo_ns when even the fastest
 *         bus cannot reach it.
 */
double matchBusClock(BusModelInput input, double target_util,
                     double lo_ns = 0.5, double hi_ns = 1000.0);

} // namespace ringsim::model

#endif // RINGSIM_MODEL_MATCHER_HPP
