/**
 * @file
 * Iterative analytic model of the slotted-ring systems.
 *
 * The hybrid methodology (Section 4.0, after Menasce & Barroso): a
 * simulation census fixes the per-processor coherence-event counts;
 * the model iterates
 *
 *   latencies -> execution time -> message rates -> slot occupancy
 *   -> slot waits -> latencies
 *
 * to a fixed point. Slot waiting combines the residual until the next
 * same-type slot header (frame time / 2) with geometric retries on
 * occupied slots (frame * rho / (1 - rho)). Pure path latencies come
 * from the ring geometry exactly as the timed simulator computes them.
 */

#ifndef RINGSIM_MODEL_RING_MODEL_HPP
#define RINGSIM_MODEL_RING_MODEL_HPP

#include "coherence/census.hpp"
#include "core/config.hpp"
#include "model/result.hpp"
#include "ring/config.hpp"

namespace ringsim::model {

/** Which ring protocol to model. */
enum class RingProtocol { Snoop, Directory };

/** Inputs of one ring-model evaluation. */
struct RingModelInput
{
    /** Calibration census (counts are for the whole census window). */
    coherence::Census census;

    /** Ring geometry and clocking. */
    ring::RingConfig ring;

    /** Service times and the processor cycle to evaluate at. */
    core::SystemConfig system;

    RingProtocol protocol = RingProtocol::Snoop;
};

/** Solve the fixed point for one operating point. */
ModelResult solveRing(const RingModelInput &input);

} // namespace ringsim::model

#endif // RINGSIM_MODEL_RING_MODEL_HPP
