#include "ring_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace ringsim::model {

namespace {

/** Clamp an occupancy so the wait formula stays finite. */
double
clampRho(double rho, bool &saturated)
{
    if (rho > 0.98) {
        saturated = true;
        return 0.98;
    }
    return std::max(rho, 0.0);
}

/**
 * Expected wait for an empty slot of one type: residual time until
 * the next same-type header (frame/2) plus geometric retries over
 * occupied slots.
 */
double
slotWait(double frame, double rho)
{
    return frame / 2.0 + frame * rho / (1.0 - rho);
}

} // namespace

ModelResult
solveRing(const RingModelInput &input)
{
    const coherence::Census &census = input.census;
    const ring::RingConfig &rc = input.ring;
    const core::SystemConfig &sys = input.system;
    if (census.procs == 0)
        fatal("ring model needs a census with processors");
    if (rc.nodes != census.procs)
        fatal("ring model: census has %u procs, ring has %u nodes",
              census.procs, rc.nodes);

    const coherence::ProtocolCensus &pc =
        input.protocol == RingProtocol::Snoop ? census.snoop
                                              : census.fullMap;

    const double procs = census.procs;
    const double stages = rc.totalStages();
    const double t_ring = static_cast<double>(rc.clockPeriod);
    const double rtt = stages * t_ring;
    const double frame =
        static_cast<double>(rc.frame.frameStages()) * t_ring;
    const double tail_p =
        static_cast<double>(rc.frame.probeStages() - 1) * t_ring;
    const double tail_b =
        static_cast<double>(rc.frame.blockSlotStages() - 1) * t_ring;
    const double frames = rc.framesOnRing();

    const double mem = static_cast<double>(sys.memoryLatency);
    const double lookup = static_cast<double>(sys.dirLookup);
    const double supply = static_cast<double>(sys.cacheSupply);
    const double cycle = static_cast<double>(sys.procCycle);

    // Per-processor event counts over the census window.
    const double n_local =
        static_cast<double>(pc.localMisses) / procs;
    const double n_clean1 = static_cast<double>(pc.cleanMiss1) / procs;
    const double n_dirty1 = static_cast<double>(pc.dirtyMiss1) / procs;
    const double n_two = static_cast<double>(pc.miss2) / procs;
    const double n_inv0 =
        static_cast<double>(pc.invTraversals[0]) / procs;
    const double n_inv1 =
        static_cast<double>(pc.invTraversals[1]) / procs;
    const double n_inv2 =
        static_cast<double>(pc.invTraversals[2] +
                            pc.invTraversals[3]) / procs;

    // Message-slot occupancy time: a message holds its slot for the
    // stage-distance it travels.
    const double probe_occ =
        pc.probes ? (pc.probeHops / static_cast<double>(pc.probes)) *
                        (stages / procs) * t_ring
                  : 0.0;
    const double block_occ =
        pc.blocks ? (pc.blockHops / static_cast<double>(pc.blocks)) *
                        (stages / procs) * t_ring
                  : 0.0;

    const double cpu_work =
        (static_cast<double>(census.dataRefs()) +
         static_cast<double>(census.instrRefs)) /
        procs * cycle;

    ModelResult out;
    double w_p = frame / 2.0;
    double w_b = frame / 2.0;
    double t_exec = cpu_work;
    double rho_p = 0.0;
    double rho_b = 0.0;

    for (unsigned iter = 0; iter < 2000; ++iter) {
        double l_local, l_clean1, l_dirty1, l_two;
        double l_inv0, l_inv1, l_inv2;
        if (input.protocol == RingProtocol::Snoop) {
            // All snoop transactions take exactly one traversal.
            l_local = std::max(w_p + rtt, mem);
            l_clean1 = w_p + rtt + mem + w_b + tail_b;
            l_dirty1 = w_p + rtt + supply + w_b + tail_b;
            l_inv0 = l_inv1 = l_inv2 = w_p + rtt;
            l_two = 0.0;
        } else {
            l_local = lookup + mem;
            l_clean1 = w_p + rtt + tail_p + lookup + mem + w_b + tail_b;
            l_dirty1 = 2.0 * w_p + rtt + 2.0 * tail_p + lookup +
                       supply + w_b + tail_b;
            l_two = 2.0 * w_p + 2.0 * rtt + 2.0 * tail_p + lookup +
                    0.5 * (mem + supply) + w_b + tail_b;
            l_inv0 = lookup;
            l_inv1 = 2.0 * w_p + rtt + tail_p + lookup;
            l_inv2 = 3.0 * w_p + 2.0 * rtt + 2.0 * tail_p + lookup;
        }

        double stall = n_local * l_local + n_clean1 * l_clean1 +
                       n_dirty1 * l_dirty1 + n_two * l_two +
                       n_inv0 * l_inv0 + n_inv1 * l_inv1 +
                       n_inv2 * l_inv2;
        double t_new = cpu_work + stall;

        // Closed-system bound per slot class: the window cannot be
        // shorter than the slot-time demand divided by the number of
        // slots serving it.
        double probe_demand = static_cast<double>(pc.probes) *
                              probe_occ / (2.0 * frames);
        double block_demand =
            static_cast<double>(pc.blocks) * block_occ / frames;
        t_new = std::max({t_new, probe_demand, block_demand});

        // Message rates over the window -> occupancy per slot type.
        double lam_p = static_cast<double>(pc.probes) / t_new;
        double lam_b = static_cast<double>(pc.blocks) / t_new;
        bool clamped = false;
        double rho_p_new =
            clampRho(lam_p * probe_occ / (2.0 * frames), clamped);
        double rho_b_new =
            clampRho(lam_b * block_occ / frames, clamped);
        out.saturated = out.saturated || clamped;

        double w_p_new = slotWait(frame, rho_p_new);
        double w_b_new = slotWait(frame, rho_b_new);

        // Damped update for stable convergence near saturation.
        w_p = 0.5 * w_p + 0.5 * w_p_new;
        w_b = 0.5 * w_b + 0.5 * w_b_new;
        rho_p = rho_p_new;
        rho_b = rho_b_new;

        out.iterations = iter + 1;
        if (std::abs(t_new - t_exec) <= 1e-9 * t_new) {
            t_exec = t_new;
            break;
        }
        t_exec = t_new;
    }

    // Final latencies at the fixed point.
    double l_clean1, l_dirty1, l_two, l_inv;
    double n_inv = n_inv0 + n_inv1 + n_inv2;
    if (input.protocol == RingProtocol::Snoop) {
        l_clean1 = w_p + rtt + mem + w_b + tail_b;
        l_dirty1 = w_p + rtt + supply + w_b + tail_b;
        l_two = 0.0;
        l_inv = w_p + rtt;
    } else {
        l_clean1 = w_p + rtt + tail_p + lookup + mem + w_b + tail_b;
        l_dirty1 = 2.0 * w_p + rtt + 2.0 * tail_p + lookup + supply +
                   w_b + tail_b;
        l_two = 2.0 * w_p + 2.0 * rtt + 2.0 * tail_p + lookup +
                0.5 * (mem + supply) + w_b + tail_b;
        l_inv = n_inv > 0.0
            ? (n_inv0 * lookup +
               n_inv1 * (2.0 * w_p + rtt + tail_p + lookup) +
               n_inv2 * (3.0 * w_p + 2.0 * rtt + 2.0 * tail_p +
                         lookup)) / n_inv
            : 0.0;
    }

    double n_remote = n_clean1 + n_dirty1 + n_two;
    out.execTimeNs = t_exec / tickNs;
    out.procUtilization = cpu_work / t_exec;
    out.missLatencyNs =
        n_remote > 0.0
            ? (n_clean1 * l_clean1 + n_dirty1 * l_dirty1 +
               n_two * l_two) / n_remote / tickNs
            : 0.0;
    out.upgradeLatencyNs = l_inv / tickNs;
    // Slot-count-weighted average occupancy (2 probe slots + 1 block
    // slot per frame).
    out.networkUtilization = (2.0 * rho_p + rho_b) / 3.0;
    return out;
}

} // namespace ringsim::model
