#include "matcher.hpp"

#include "util/logging.hpp"

namespace ringsim::model {

double
matchBusClock(BusModelInput input, double target_util, double lo_ns,
              double hi_ns)
{
    if (!(lo_ns > 0.0) || !(hi_ns > lo_ns))
        fatal("matchBusClock: bad bracket [%f, %f]", lo_ns, hi_ns);

    auto util_at = [&input](double period_ns) {
        input.bus.clockPeriod = nsToTicks(period_ns);
        return solveBus(input).procUtilization;
    };

    // Utilization decreases as the bus slows down.
    if (util_at(hi_ns) >= target_util)
        return hi_ns;
    if (util_at(lo_ns) <= target_util)
        return lo_ns;

    double lo = lo_ns;
    double hi = hi_ns;
    for (int iter = 0; iter < 60; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (util_at(mid) >= target_util) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

} // namespace ringsim::model
