#include "json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace ringsim::util {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x",
                                 static_cast<unsigned char>(c));
            else
                out += c;
        }
    }
    return out;
}

JsonValue
JsonValue::null()
{
    return JsonValue();
}

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::integer(std::uint64_t u)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(u);
    v.u64_ = u;
    v.exactU64_ = true;
    return v;
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue: asBool on non-bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue: asNumber on non-number");
    return num_;
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue: asU64 on non-number");
    if (exactU64_)
        return u64_;
    if (num_ < 0 || num_ != std::floor(num_) || num_ > 1.8e19)
        panic("JsonValue: %g is not a u64", num_);
    return static_cast<std::uint64_t>(num_);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue: asString on non-string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        panic("JsonValue: items on non-array");
    return items_;
}

void
JsonValue::append(JsonValue v)
{
    if (kind_ != Kind::Array)
        panic("JsonValue: append on non-array");
    items_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        panic("JsonValue: members on non-object");
    return members_;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ != Kind::Object)
        panic("JsonValue: set on non-object");
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

std::string
JsonValue::getString(const std::string &key, const std::string &fallback,
                     std::vector<std::string> *errors) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return fallback;
    if (!v->isString()) {
        if (errors)
            errors->push_back(key + " = <non-string>: expected a "
                                    "JSON string");
        return fallback;
    }
    return v->asString();
}

double
JsonValue::getNumber(const std::string &key, double fallback,
                     std::vector<std::string> *errors) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return fallback;
    if (!v->isNumber()) {
        if (errors)
            errors->push_back(key + " = <non-number>: expected a "
                                    "JSON number");
        return fallback;
    }
    return v->asNumber();
}

std::uint64_t
JsonValue::getU64(const std::string &key, std::uint64_t fallback,
                  std::vector<std::string> *errors) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return fallback;
    if (!v->isNumber() || v->asNumber() < 0 ||
        v->asNumber() != std::floor(v->asNumber())) {
        if (errors)
            errors->push_back(key + ": expected a non-negative "
                                    "integer");
        return fallback;
    }
    return v->asU64();
}

bool
JsonValue::getBool(const std::string &key, bool fallback,
                   std::vector<std::string> *errors) const
{
    const JsonValue *v = find(key);
    if (!v || v->isNull())
        return fallback;
    if (!v->isBool()) {
        if (errors)
            errors->push_back(key + " = <non-bool>: expected true or "
                                    "false");
        return fallback;
    }
    return v->asBool();
}

void
JsonValue::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        if (exactU64_) {
            out += strprintf("%llu",
                             static_cast<unsigned long long>(u64_));
        } else if (num_ == std::floor(num_) &&
                   std::abs(num_) < 1e15) {
            out += strprintf("%.0f", num_);
        } else {
            out += strprintf("%.17g", num_);
        }
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(str_);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &v : items_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &member : members_) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(member.first);
            out += "\":";
            member.second.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace {

/** Recursive-descent parser state over one document. */
struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;
    static constexpr int maxDepth = 64;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = strprintf("offset %zu: %s", pos, msg.c_str());
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c)
            return fail(strprintf("expected '%c'", c));
        ++pos;
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = JsonValue::string(std::move(s));
            return true;
        }
        if (c == 't' || c == 'f')
            return parseKeyword(out);
        if (c == 'n')
            return parseKeyword(out);
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        return fail("unexpected character");
    }

    bool
    parseKeyword(JsonValue *out)
    {
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            *out = JsonValue::boolean(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            *out = JsonValue::boolean(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            *out = JsonValue::null();
            return true;
        }
        return fail("bad keyword");
    }

    bool
    parseNumber(JsonValue *out)
    {
        size_t start = pos;
        bool negative = false;
        if (pos < text.size() && text[pos] == '-') {
            negative = true;
            ++pos;
        }
        bool integral = true;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-')) {
            if (text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E')
                integral = false;
            ++pos;
        }
        std::string token = text.substr(start, pos - start);
        if (token.empty() || token == "-")
            return fail("bad number");
        // Lossless u64 path for ids, seeds and tick counts.
        if (integral && !negative && token.size() <= 20) {
            char *end = nullptr;
            errno = 0;
            unsigned long long u = std::strtoull(token.c_str(), &end, 10);
            if (end && *end == '\0' && errno == 0) {
                *out = JsonValue::integer(u);
                return true;
            }
        }
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            return fail("bad number");
        *out = JsonValue::number(d);
        return true;
    }

    bool
    parseString(std::string *out)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        std::string s;
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                *out = std::move(s);
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                s += c;
                ++pos;
                continue;
            }
            if (pos + 1 >= text.size())
                return fail("dangling escape");
            char e = text[pos + 1];
            pos += 2;
            switch (e) {
              case '"':
                s += '"';
                break;
              case '\\':
                s += '\\';
                break;
              case '/':
                s += '/';
                break;
              case 'b':
                s += '\b';
                break;
              case 'f':
                s += '\f';
                break;
              case 'n':
                s += '\n';
                break;
              case 'r':
                s += '\r';
                break;
              case 't':
                s += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                pos += 4;
                // Encode the BMP code point as UTF-8 (surrogate
                // pairs are not supported by this minimal parser).
                if (code < 0x80) {
                    s += static_cast<char>(code);
                } else if (code < 0x800) {
                    s += static_cast<char>(0xc0 | (code >> 6));
                    s += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    s += static_cast<char>(0xe0 | (code >> 12));
                    s += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    s += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        ++pos; // '['
        JsonValue arr = JsonValue::array();
        skipSpace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            *out = std::move(arr);
            return true;
        }
        for (;;) {
            JsonValue item;
            if (!parseValue(&item, depth + 1))
                return false;
            arr.append(std::move(item));
            skipSpace();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                *out = std::move(arr);
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        ++pos; // '{'
        JsonValue obj = JsonValue::object();
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            *out = std::move(obj);
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(&key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            obj.set(key, std::move(value));
            skipSpace();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                skipSpace();
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                *out = std::move(obj);
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }
};

} // namespace

bool
tryParseJson(const std::string &text, JsonValue *out, std::string *error)
{
    Parser p(text);
    JsonValue v;
    if (!p.parseValue(&v, 0)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipSpace();
    if (p.pos != text.size()) {
        if (error)
            *error = strprintf("offset %zu: trailing garbage after "
                               "document",
                               p.pos);
        return false;
    }
    *out = std::move(v);
    return true;
}

} // namespace ringsim::util
