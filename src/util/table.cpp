#include "table.hpp"

#include <algorithm>
#include <cstdio>

#include "logging.hpp"

namespace ringsim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        panic("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("TextTable row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };

    auto print_rule = [&]() {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "+-" : "-+-");
            os << std::string(widths[c], '-');
        }
        os << "-+\n";
    };

    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto &row : rows_)
        print_row(row);
    print_rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << quote(row[c]);
        }
        os << '\n';
    };

    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmtDouble(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
fmtPercent(double fraction, int decimals)
{
    return strprintf("%.*f", decimals, fraction * 100.0);
}

} // namespace ringsim
