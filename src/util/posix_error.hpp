/**
 * @file
 * Thread-safe errno formatting.
 *
 * std::strerror returns a pointer into internal, possibly shared
 * storage and is on clang-tidy's concurrency-mt-unsafe list; the
 * service's connection threads format errno concurrently, so every
 * call site uses this strerror_r-backed wrapper instead.
 */

#ifndef RINGSIM_UTIL_POSIX_ERROR_HPP
#define RINGSIM_UTIL_POSIX_ERROR_HPP

#include <string>

namespace ringsim::util {

/** Message for @p err (an errno value), e.g. "Connection refused". */
std::string errnoString(int err);

} // namespace ringsim::util

#endif // RINGSIM_UTIL_POSIX_ERROR_HPP
