/**
 * @file
 * Plain-text table and CSV rendering for benchmark output.
 *
 * Every bench binary reproduces a table or figure from the paper; this
 * helper renders aligned ASCII tables (for humans) and CSV (for
 * plotting the figure series).
 */

#ifndef RINGSIM_UTIL_TABLE_HPP
#define RINGSIM_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace ringsim {

/**
 * A growable table of string cells with a header row, rendered with
 * per-column alignment.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Number of columns. */
    size_t columns() const { return headers_.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-style quoting where needed). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a fraction in [0,1] as a percentage string, e.g. "42.3". */
std::string fmtPercent(double fraction, int decimals = 1);

} // namespace ringsim

#endif // RINGSIM_UTIL_TABLE_HPP
