/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Simulation runs must be exactly reproducible from a seed, so all
 * stochastic choices in ringsim (trace generation, page placement) go
 * through this xoshiro256** implementation rather than std::mt19937 or
 * rand(); the standard distributions are not bit-stable across library
 * implementations, so we also provide our own distribution helpers.
 */

#ifndef RINGSIM_UTIL_RNG_HPP
#define RINGSIM_UTIL_RNG_HPP

#include <array>
#include <cstdint>

namespace ringsim {

/**
 * xoshiro256** 1.0 generator (Blackman & Vigna, public domain algorithm)
 * with splitmix64 seeding. Bit-reproducible on every platform.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability p. */
    bool chance(double p);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /**
     * Zipf-like rank selection over [0, n): probability of rank r is
     * proportional to 1/(r+1)^alpha. Used for locality-skewed access
     * streams in the synthetic trace generators.
     */
    std::uint64_t nextZipf(std::uint64_t n, double alpha);

    /** Geometric number of failures before a success with parameter p. */
    std::uint64_t nextGeometric(double p);

    /**
     * Fork a child generator whose stream is independent of, but fully
     * determined by, this generator's seed and the given stream id.
     * Lets each simulated processor own a private stream.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::array<std::uint64_t, 4> state_;
    std::uint64_t seed_;
};

} // namespace ringsim

#endif // RINGSIM_UTIL_RNG_HPP
