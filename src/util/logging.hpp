/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a ringsim bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits with 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — progress/status information.
 */

#ifndef RINGSIM_UTIL_LOGGING_HPP
#define RINGSIM_UTIL_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace ringsim {

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Set the global verbosity; messages below the level are suppressed. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 *
 * @param fmt printf-style format of the diagnostic message.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 *
 * @param fmt printf-style format of the diagnostic message.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning to stderr (suppressed at LogLevel::Silent). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a status message to stderr (needs LogLevel::Inform or higher). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message to stderr (needs LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ringsim

#endif // RINGSIM_UTIL_LOGGING_HPP
