#include "rng.hpp"

#include <cmath>

#include "logging.hpp"

namespace ringsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 high-quality mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo > hi");
    return lo + nextBounded(hi - lo + 1);
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double alpha)
{
    if (n == 0)
        panic("Rng::nextZipf called with n == 0");
    if (n == 1)
        return 0;
    // Inverse-CDF approximation via the continuous analogue; adequate
    // for shaping locality and cheap enough for per-reference use.
    if (alpha == 1.0) {
        double u = nextDouble();
        double r = std::exp(u * std::log(static_cast<double>(n))) - 1.0;
        auto idx = static_cast<std::uint64_t>(r);
        return idx >= n ? n - 1 : idx;
    }
    double u = nextDouble();
    double one_minus = 1.0 - alpha;
    double max_cdf = std::pow(static_cast<double>(n), one_minus);
    double r = std::pow(u * (max_cdf - 1.0) + 1.0, 1.0 / one_minus) - 1.0;
    auto idx = static_cast<std::uint64_t>(r);
    return idx >= n ? n - 1 : idx;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::nextGeometric: p out of (0,1]");
    if (p == 1.0)
        return 0;
    double u = nextDouble();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Mix the parent seed with the stream id through splitmix64 so
    // sibling streams are decorrelated.
    std::uint64_t s = seed_ ^ (0xd1342543de82ef95ULL * (stream_id + 1));
    std::uint64_t child_seed = splitmix64(s);
    return Rng(child_seed);
}

} // namespace ringsim
