/**
 * @file
 * Centralized environment-variable access.
 *
 * Every process-level knob (RINGSIM_JOBS, RINGSIM_WATCHDOG_MS,
 * RINGSIM_CACHE_SALT, ...) is read through these helpers, and a lint
 * rule forbids direct std::getenv outside src/util/ — so there is one
 * place to see every variable the system honors, and parsing/warning
 * behavior is uniform: a malformed value warns once and falls back,
 * it never silently changes meaning.
 */

#ifndef RINGSIM_UTIL_ENV_HPP
#define RINGSIM_UTIL_ENV_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace ringsim::util {

/** Raw value of @p name; nullopt when unset. */
std::optional<std::string> envString(const char *name);

/**
 * @p name parsed as an unsigned integer. Unset → nullopt; set but
 * malformed (or zero when @p min_value > 0) → warn and nullopt.
 */
std::optional<std::uint64_t> envU64(const char *name,
                                    std::uint64_t min_value = 0);

} // namespace ringsim::util

#endif // RINGSIM_UTIL_ENV_HPP
