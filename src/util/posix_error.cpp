#include "posix_error.hpp"

#include <cstdio>
#include <cstring>

namespace ringsim::util {

std::string
errnoString(int err)
{
    char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
    // GNU strerror_r may return a static string instead of filling
    // buf; either way the result is immutable and thread-safe.
    return strerror_r(err, buf, sizeof(buf));
#else
    if (strerror_r(err, buf, sizeof(buf)) != 0)
        std::snprintf(buf, sizeof(buf), "errno %d", err);
    return buf;
#endif
}

} // namespace ringsim::util
