/**
 * @file
 * Minimal JSON support shared by every emitter and the service layer.
 *
 * Three things live here, deliberately small:
 *
 *  - jsonEscape(): the one string-escaping routine every JSON emitter
 *    in the tree uses (runner failure summaries, bench artifacts,
 *    service responses), so a config or trace name containing quotes,
 *    backslashes or control characters can never produce malformed
 *    output;
 *  - JsonValue: an ordered document model (object keys keep insertion
 *    order, so dumps are deterministic and byte-stable across runs and
 *    library versions — the same property the lint rule about
 *    unordered iteration protects elsewhere);
 *  - tryParseJson(): a strict recursive-descent parser for the NDJSON
 *    request lines the experiment service ingests. It rejects
 *    trailing garbage, caps nesting depth, and reports the byte
 *    offset of the first error.
 *
 * This is not a general-purpose JSON library: numbers are doubles
 * (plus a lossless u64 path for ids and seeds), and \uXXXX escapes
 * outside ASCII are passed through as raw UTF-8 only for the BMP.
 */

#ifndef RINGSIM_UTIL_JSON_HPP
#define RINGSIM_UTIL_JSON_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ringsim::util {

/**
 * Escape @p s for inclusion inside a JSON string literal (quotes,
 * backslashes, and control characters; the surrounding quotes are the
 * caller's).
 */
std::string jsonEscape(const std::string &s);

/** One JSON document node. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /** Leaf constructors. */
    static JsonValue null();
    static JsonValue boolean(bool b);
    static JsonValue number(double d);
    /** Integer that must survive the round trip exactly (ids, seeds). */
    static JsonValue integer(std::uint64_t u);
    static JsonValue string(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Leaf accessors; panic() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    /** Number as u64 (panics when negative, fractional or too big). */
    std::uint64_t asU64() const;
    const std::string &asString() const;

    /** Array access. */
    const std::vector<JsonValue> &items() const;
    void append(JsonValue v);

    /** Object access: members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Set @p key (replacing an existing member of the same name). */
    void set(const std::string &key, JsonValue v);

    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /**
     * Typed member lookup with defaults, for request parsing. Each
     * returns @p fallback when the key is absent; appends to
     * @p errors (as "key = <value>: ..." messages) on a type
     * mismatch.
     */
    std::string getString(const std::string &key,
                          const std::string &fallback,
                          std::vector<std::string> *errors) const;
    double getNumber(const std::string &key, double fallback,
                     std::vector<std::string> *errors) const;
    std::uint64_t getU64(const std::string &key, std::uint64_t fallback,
                         std::vector<std::string> *errors) const;
    bool getBool(const std::string &key, bool fallback,
                 std::vector<std::string> *errors) const;

    /** Serialize compactly (no whitespace), deterministically. */
    std::string dump() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::uint64_t u64_ = 0;
    bool exactU64_ = false; //!< emit u64_ instead of num_
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    void dumpTo(std::string &out) const;
};

/**
 * Parse one complete JSON document from @p text. On success fills
 * @p out and returns true; on failure returns false and fills
 * @p error with a diagnostic naming the byte offset. Trailing
 * non-whitespace after the document is an error.
 */
[[nodiscard]] bool tryParseJson(const std::string &text, JsonValue *out,
                                std::string *error);

} // namespace ringsim::util

#endif // RINGSIM_UTIL_JSON_HPP
