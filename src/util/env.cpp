#include "env.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/logging.hpp"

namespace ringsim::util {

std::optional<std::string>
envString(const char *name)
{
    // Sanctioned getenv site (see the raw-getenv lint rule);
    // nothing in this process calls setenv after startup.
    const char *v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (!v)
        return std::nullopt;
    return std::string(v);
}

std::optional<std::uint64_t>
envU64(const char *name, std::uint64_t min_value)
{
    const char *v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (!v)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (!end || *end != '\0' || end == v || errno != 0 ||
        parsed < min_value) {
        warn("ignoring invalid %s='%s'", name, v);
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(parsed);
}

} // namespace ringsim::util
