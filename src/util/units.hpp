/**
 * @file
 * Simulation time base and unit helpers.
 *
 * All simulated time is kept as an integer count of picoseconds (Tick).
 * The paper's parameters are naturally expressed in nanoseconds (ring
 * stage = 2 ns, memory = 140 ns, processor cycle = 1..20 ns), so every
 * quantity of interest is an exact integer in this base.
 */

#ifndef RINGSIM_UTIL_UNITS_HPP
#define RINGSIM_UTIL_UNITS_HPP

#include <cstdint>

namespace ringsim {

/** Simulated time in integer picoseconds. */
using Tick = std::uint64_t;

/** Cycle or event counts. */
using Count = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Node (processor/memory module) identifier. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalidNode = ~NodeId(0);

/** One picosecond. */
inline constexpr Tick tickPs = 1;

/** Ticks per nanosecond. */
inline constexpr Tick tickNs = 1000;

/** Ticks per microsecond. */
inline constexpr Tick tickUs = 1000 * tickNs;

/** Ticks per millisecond. */
inline constexpr Tick tickMs = 1000 * tickUs;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickNs) + 0.5);
}

/** Convert ticks to (double) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickNs);
}

/** Clock period in ticks for a frequency given in MHz. */
constexpr Tick
mhzToPeriod(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/** Processor cycle time (ns) to sustained MIPS at 1 instruction/cycle. */
constexpr double
cycleNsToMips(double cycle_ns)
{
    return 1e3 / cycle_ns;
}

} // namespace ringsim

#endif // RINGSIM_UTIL_UNITS_HPP
