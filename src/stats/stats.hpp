/**
 * @file
 * Lightweight statistics primitives used by every simulator component.
 *
 * The design follows the gem5 stats package in spirit (named stats that
 * components register and a central dump) but is deliberately small:
 * counters, running means (Welford), histograms and a registry.
 */

#ifndef RINGSIM_STATS_STATS_HPP
#define RINGSIM_STATS_STATS_HPP

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ringsim::stats {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    /** Increment by @p n (default 1). */
    void inc(Count n = 1) { value_ += n; }

    /** Current count. */
    Count value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    Count value_ = 0;
};

/**
 * Running sample statistics: count, mean, variance (Welford's online
 * algorithm), min and max. Used for latency distributions.
 */
class Sampler
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Number of samples recorded. */
    Count count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Discard all samples. */
    void reset();

  private:
    Count count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width linear histogram with underflow/overflow buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bucket.
     * @param hi upper edge of the last bucket.
     * @param buckets number of equal-width buckets between lo and hi.
     */
    Histogram(double lo, double hi, size_t buckets);

    /** Record one sample. */
    void add(double x);

    /** Count in bucket @p i (0-based). */
    Count bucketCount(size_t i) const;

    /** Samples below the first bucket. */
    Count underflow() const { return underflow_; }

    /** Samples at or above the last bucket edge. */
    Count overflow() const { return overflow_; }

    /** Total samples including under/overflow. */
    Count total() const { return total_; }

    /** Number of buckets. */
    size_t buckets() const { return counts_.size(); }

    /** Lower edge of bucket @p i. */
    double bucketLo(size_t i) const;

    /** Value below which fraction @p q of samples fall (approximate). */
    double quantile(double q) const;

    /** Discard all samples. */
    void reset();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<Count> counts_;
    Count underflow_ = 0;
    Count overflow_ = 0;
    Count total_ = 0;
};

/**
 * A named collection of scalar stats for end-of-run reporting.
 * Components append (name, value) pairs; dump() renders them.
 */
class Registry
{
  public:
    /** Record a scalar under @p name. */
    void record(const std::string &name, double value);

    /** Look up a previously recorded scalar; panics if absent. */
    double get(const std::string &name) const;

    /** True if @p name has been recorded. */
    bool has(const std::string &name) const;

    /** Render "name = value" lines, in insertion order. */
    void dump(std::ostream &os) const;

    /** Number of recorded entries. */
    size_t size() const { return entries_.size(); }

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

} // namespace ringsim::stats

#endif // RINGSIM_STATS_STATS_HPP
