#include "stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace ringsim::stats {

void
Sampler::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
Sampler::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Sampler::stddev() const
{
    return std::sqrt(variance());
}

void
Sampler::reset()
{
    *this = Sampler();
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    if (buckets == 0 || hi <= lo)
        panic("Histogram requires hi > lo and at least one bucket");
    width_ = (hi - lo) / static_cast<double>(buckets);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<size_t>((x - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

Count
Histogram::bucketCount(size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram bucket %zu out of range", i);
    return counts_[i];
}

double
Histogram::bucketLo(size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<Count>(q * static_cast<double>(total_));
    Count seen = underflow_;
    if (seen > target)
        return lo_;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen > target) {
            // Linear interpolation inside the bucket.
            Count before = seen - counts_[i];
            double frac = counts_[i]
                ? static_cast<double>(target - before) /
                      static_cast<double>(counts_[i])
                : 0.0;
            return bucketLo(i) + frac * width_;
        }
    }
    return hi_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

void
Registry::record(const std::string &name, double value)
{
    for (auto &entry : entries_) {
        if (entry.first == name) {
            entry.second = value;
            return;
        }
    }
    entries_.emplace_back(name, value);
}

double
Registry::get(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.first == name)
            return entry.second;
    panic("stats::Registry: no stat named '%s'", name.c_str());
}

bool
Registry::has(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.first == name)
            return true;
    return false;
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &entry : entries_)
        os << entry.first << " = " << entry.second << '\n';
}

} // namespace ringsim::stats
