#include "figures.hpp"

#include <sstream>

#include "runner/experiment_runner.hpp"
#include "util/logging.hpp"

namespace ringsim::figures {

const std::vector<double> &
cycleSweepNs()
{
    static const std::vector<double> sweep = {1,  2,  3,  4,  5, 6,
                                              8,  10, 12, 14, 16, 20};
    return sweep;
}

TextTable
makeFigureTable()
{
    return TextTable({"workload", "series", "source", "cycle (ns)",
                      "proc util %", "net util %", "miss lat (ns)"});
}

void
FigureOptions::apply(trace::WorkloadConfig &cfg) const
{
    cfg.dataRefsPerProc = fast ? refs / 4 : refs;
    cfg.seed = seed;
}

namespace {

using Row = std::vector<std::string>;

Row
makeRow(const trace::WorkloadConfig &wl, const std::string &label,
        const char *source, double cycle_ns, double putil,
        double netutil, double lat)
{
    return {wl.displayName(), label, source, fmtDouble(cycle_ns, 0),
            fmtPercent(putil, 1), fmtPercent(netutil, 1),
            fmtDouble(lat, 0)};
}

std::vector<Row>
ringSeriesRows(const trace::WorkloadConfig &wl,
               const coherence::Census &census, Tick ring_period,
               model::RingProtocol protocol, const std::string &label)
{
    std::vector<Row> rows;
    for (double cycle_ns : cycleSweepNs()) {
        model::RingModelInput in;
        in.census = census;
        in.ring =
            core::RingSystemConfig::forProcs(wl.procs, ring_period)
                .ring;
        in.system.procCycle = nsToTicks(cycle_ns);
        in.protocol = protocol;
        model::ModelResult r = model::solveRing(in);
        rows.push_back(makeRow(wl, label, "model", cycle_ns,
                               r.procUtilization, r.networkUtilization,
                               r.missLatencyNs));
    }
    return rows;
}

std::vector<Row>
busSeriesRows(const trace::WorkloadConfig &wl,
              const coherence::Census &census, Tick bus_period,
              const std::string &label)
{
    std::vector<Row> rows;
    for (double cycle_ns : cycleSweepNs()) {
        model::BusModelInput in;
        in.census = census;
        in.bus = core::BusSystemConfig::forProcs(wl.procs, bus_period)
                     .bus;
        in.system.procCycle = nsToTicks(cycle_ns);
        model::ModelResult r = model::solveBus(in);
        rows.push_back(makeRow(wl, label, "model", cycle_ns,
                               r.procUtilization, r.networkUtilization,
                               r.missLatencyNs));
    }
    return rows;
}

std::vector<Row>
ringSimRows(const trace::WorkloadConfig &wl, Tick ring_period,
            core::ProtocolKind kind, const fault::FaultConfig &faults,
            const std::string &label)
{
    core::RingSystemConfig cfg =
        core::RingSystemConfig::forProcs(wl.procs, ring_period);
    cfg.common.faults = faults;
    core::RunResult r = core::runRingSystem(cfg, wl, kind);
    return {makeRow(wl, label, "sim", 20, r.procUtilization,
                    r.networkUtilization, r.missLatencyNs)};
}

std::vector<Row>
busSimRows(const trace::WorkloadConfig &wl, Tick bus_period,
           const std::string &label)
{
    core::BusSystemConfig cfg =
        core::BusSystemConfig::forProcs(wl.procs, bus_period);
    core::RunResult r = core::runBusSystem(cfg, wl);
    return {makeRow(wl, label, "sim", 20, r.procUtilization,
                    r.networkUtilization, r.missLatencyNs)};
}

std::string
workloadKey(const trace::WorkloadConfig &wl)
{
    return wl.displayName() + "/" + std::to_string(wl.seed) + "/" +
           std::to_string(wl.dataRefsPerProc);
}

} // namespace

std::vector<FigureRow>
FigureSweep::blockRows(const Block &block,
                       const coherence::Census *census,
                       const fault::FaultConfig &faults,
                       bool model_only)
{
    // Degraded tier: the sim validation rows are the expensive half;
    // model-only output simply omits them.
    if (model_only && (block.kind == BlockKind::RingSim ||
                       block.kind == BlockKind::BusSim))
        return {};
    switch (block.kind) {
      case BlockKind::RingSeries:
        return ringSeriesRows(block.wl, *census, block.period,
                              block.protocol, block.label);
      case BlockKind::BusSeries:
        return busSeriesRows(block.wl, *census, block.period,
                             block.label);
      case BlockKind::RingSim:
        return ringSimRows(block.wl, block.period, block.simKind,
                           faults, block.label);
      case BlockKind::BusSim:
        return busSimRows(block.wl, block.period, block.label);
    }
    panic("unreachable figure block kind");
}

std::size_t
FigureSweep::censusSlotFor(const trace::WorkloadConfig &wl)
{
    std::string key = workloadKey(wl);
    for (std::size_t i = 0; i < calibrationKeys_.size(); ++i) {
        if (calibrationKeys_[i] == key)
            return i;
    }
    calibrationKeys_.push_back(std::move(key));
    calibrations_.push_back(wl);
    return calibrations_.size() - 1;
}

void
FigureSweep::addRingSeries(const trace::WorkloadConfig &wl,
                           Tick ring_period,
                           model::RingProtocol protocol,
                           const std::string &label)
{
    Block block;
    block.kind = BlockKind::RingSeries;
    block.wl = wl;
    block.period = ring_period;
    block.protocol = protocol;
    block.label = label;
    block.needsCensus = true;
    block.censusSlot = censusSlotFor(wl);
    blocks_.push_back(std::move(block));
}

void
FigureSweep::addBusSeries(const trace::WorkloadConfig &wl,
                          Tick bus_period, const std::string &label)
{
    Block block;
    block.kind = BlockKind::BusSeries;
    block.wl = wl;
    block.period = bus_period;
    block.label = label;
    block.needsCensus = true;
    block.censusSlot = censusSlotFor(wl);
    blocks_.push_back(std::move(block));
}

void
FigureSweep::addRingSimPoint(const trace::WorkloadConfig &wl,
                             Tick ring_period, core::ProtocolKind kind,
                             const std::string &label)
{
    Block block;
    block.kind = BlockKind::RingSim;
    block.wl = wl;
    block.period = ring_period;
    block.simKind = kind;
    block.label = label;
    blocks_.push_back(std::move(block));
}

void
FigureSweep::addBusSimPoint(const trace::WorkloadConfig &wl,
                            Tick bus_period, const std::string &label)
{
    Block block;
    block.kind = BlockKind::BusSim;
    block.wl = wl;
    block.period = bus_period;
    block.label = label;
    blocks_.push_back(std::move(block));
}

TextTable
FigureSweep::run() const
{
    // Phase 1: one calibration job per distinct workload. Sim points
    // do not consume a census, so they are not held up by this phase
    // in principle; in practice calibrations are the cheaper half and
    // the two-phase structure keeps result wiring trivial.
    std::vector<std::function<coherence::Census()>> calib_tasks;
    calib_tasks.reserve(calibrations_.size());
    for (const trace::WorkloadConfig &wl : calibrations_) {
        calib_tasks.push_back(
            [wl]() { return model::calibrate(wl); });
    }
    std::vector<coherence::Census> censuses =
        runner::runAll(std::move(calib_tasks), opt_.jobs);

    // Phase 2: every registered block is one job producing its rows.
    // Blocks the degraded tier skips still occupy their index (with
    // empty rows) so results aligns with the block index space that
    // sweep-part jobs shard over.
    std::vector<std::function<std::vector<Row>()>> block_tasks;
    block_tasks.reserve(blocks_.size());
    const fault::FaultConfig &faults = opt_.faults;
    const bool model_only = opt_.modelOnly;
    for (const Block &block : blocks_) {
        const coherence::Census *census =
            block.needsCensus ? &censuses[block.censusSlot] : nullptr;
        block_tasks.push_back([&block, census, &faults,
                               model_only]() -> std::vector<Row> {
            return blockRows(block, census, faults, model_only);
        });
    }
    std::vector<std::vector<Row>> results =
        runner::runAll(std::move(block_tasks), opt_.jobs);

    // Assemble in registration order: bit-identical to a serial run.
    return assemble(results);
}

std::vector<FigureRow>
FigureSweep::runBlock(std::size_t index) const
{
    if (index >= blocks_.size())
        panic("figure block index %zu out of range (%zu blocks)",
              index, blocks_.size());
    const Block &block = blocks_[index];
    coherence::Census census;
    if (block.needsCensus)
        census = model::calibrate(block.wl);
    return blockRows(block, block.needsCensus ? &census : nullptr,
                     opt_.faults, opt_.modelOnly);
}

TextTable
FigureSweep::assemble(
    const std::vector<std::vector<FigureRow>> &rows_per_block) const
{
    if (rows_per_block.size() != blocks_.size())
        panic("figure assembly expects %zu block row sets, got %zu",
              blocks_.size(), rows_per_block.size());
    TextTable table = makeFigureTable();
    for (const std::vector<FigureRow> &rows : rows_per_block) {
        for (const FigureRow &row : rows)
            table.addRow(row);
    }
    return table;
}

const char *
figureName(FigureId id)
{
    switch (id) {
      case FigureId::Fig3:
        return "fig3";
      case FigureId::Fig4:
        return "fig4";
      case FigureId::Fig6:
        return "fig6";
    }
    return "?";
}

bool
tryFigureFromName(const std::string &name, FigureId *out)
{
    if (name == "fig3")
        *out = FigureId::Fig3;
    else if (name == "fig4")
        *out = FigureId::Fig4;
    else if (name == "fig6")
        *out = FigureId::Fig6;
    else
        return false;
    return true;
}

std::string
figureTitle(FigureId id)
{
    switch (id) {
      case FigureId::Fig3:
        return "Figure 3: snooping vs directory, 500 MHz 32-bit "
               "rings (SPLASH, 8/16/32 CPUs)";
      case FigureId::Fig4:
        return "Figure 4: snooping vs directory, 500 MHz 32-bit "
               "ring (FFT/WEATHER/SIMPLE, 64 CPUs)";
      case FigureId::Fig6:
        return "Figure 6: 32-bit slotted ring vs 64-bit split "
               "transaction bus (snooping)";
    }
    panic("unreachable figure id");
}

namespace {

void
buildFig3(FigureSweep &sweep, const FigureOptions &opt)
{
    for (trace::Benchmark b : {trace::Benchmark::MP3D,
                               trace::Benchmark::WATER,
                               trace::Benchmark::CHOLESKY}) {
        for (unsigned procs : {8u, 16u, 32u}) {
            trace::WorkloadConfig wl = trace::workloadPreset(b, procs);
            opt.apply(wl);

            sweep.addRingSeries(wl, 2000, model::RingProtocol::Snoop,
                                "snooping");
            sweep.addRingSeries(wl, 2000,
                                model::RingProtocol::Directory,
                                "directory");
            sweep.addRingSimPoint(wl, 2000,
                                  core::ProtocolKind::RingSnoop,
                                  "snooping");
            sweep.addRingSimPoint(wl, 2000,
                                  core::ProtocolKind::RingDirectory,
                                  "directory");
        }
    }
}

void
buildFig4(FigureSweep &sweep, const FigureOptions &opt)
{
    for (trace::Benchmark b : {trace::Benchmark::FFT,
                               trace::Benchmark::WEATHER,
                               trace::Benchmark::SIMPLE}) {
        trace::WorkloadConfig wl = trace::workloadPreset(b, 64);
        opt.apply(wl);

        sweep.addRingSeries(wl, 2000, model::RingProtocol::Snoop,
                            "snooping");
        sweep.addRingSeries(wl, 2000, model::RingProtocol::Directory,
                            "directory");
        sweep.addRingSimPoint(wl, 2000,
                              core::ProtocolKind::RingSnoop,
                              "snooping");
        sweep.addRingSimPoint(wl, 2000,
                              core::ProtocolKind::RingDirectory,
                              "directory");
    }
}

void
buildFig6(FigureSweep &sweep, const FigureOptions &opt,
          bool with_cholesky)
{
    std::vector<trace::Benchmark> benchmarks = {trace::Benchmark::MP3D,
                                                trace::Benchmark::WATER};
    if (with_cholesky)
        benchmarks.push_back(trace::Benchmark::CHOLESKY);

    for (trace::Benchmark b : benchmarks) {
        for (unsigned procs : {8u, 16u, 32u}) {
            trace::WorkloadConfig wl = trace::workloadPreset(b, procs);
            opt.apply(wl);

            sweep.addRingSeries(wl, 2000, model::RingProtocol::Snoop,
                                "ring 500MHz");
            sweep.addRingSeries(wl, 4000, model::RingProtocol::Snoop,
                                "ring 250MHz");
            sweep.addBusSeries(wl, 10000, "bus 100MHz");
            sweep.addBusSeries(wl, 20000, "bus 50MHz");
            sweep.addRingSimPoint(wl, 2000,
                                  core::ProtocolKind::RingSnoop,
                                  "ring 500MHz");
            sweep.addBusSimPoint(wl, 20000, "bus 50MHz");
        }
    }
}

} // namespace

FigureSweep
buildFigure(FigureId id, const FigureOptions &opt, bool fig6_cholesky)
{
    FigureSweep sweep(opt);
    switch (id) {
      case FigureId::Fig3:
        buildFig3(sweep, opt);
        break;
      case FigureId::Fig4:
        buildFig4(sweep, opt);
        break;
      case FigureId::Fig6:
        buildFig6(sweep, opt, fig6_cholesky);
        break;
    }
    return sweep;
}

namespace {

std::string
renderTable(FigureId id, const TextTable &table, bool csv)
{
    std::ostringstream os;
    if (csv) {
        table.printCsv(os);
    } else {
        os << "\n== " << figureTitle(id) << " ==\n";
        table.print(os);
    }
    return os.str();
}

} // namespace

std::string
renderFigure(FigureId id, const FigureOptions &opt, bool csv,
             bool fig6_cholesky)
{
    FigureSweep sweep = buildFigure(id, opt, fig6_cholesky);
    return renderTable(id, sweep.run(), csv);
}

std::size_t
figureBlockCount(FigureId id, const FigureOptions &opt,
                 bool fig6_cholesky)
{
    return buildFigure(id, opt, fig6_cholesky).blockCount();
}

std::vector<FigureRow>
runFigureBlock(FigureId id, const FigureOptions &opt,
               std::size_t block, bool fig6_cholesky)
{
    return buildFigure(id, opt, fig6_cholesky).runBlock(block);
}

std::string
assembleFigure(FigureId id, const FigureOptions &opt,
               const std::vector<std::vector<FigureRow>> &rows_per_block,
               bool csv, bool fig6_cholesky)
{
    FigureSweep sweep = buildFigure(id, opt, fig6_cholesky);
    return renderTable(id, sweep.assemble(rows_per_block), csv);
}

} // namespace ringsim::figures
