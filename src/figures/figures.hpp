/**
 * @file
 * The paper's figure sweeps as a library.
 *
 * PR 1 made the figure benches declarative (register series and
 * validation points, run them as parallel jobs); this module hoists
 * that machinery — and the *definitions* of Figures 3, 4 and 6 —
 * out of bench/ so two front ends can execute the identical sweep:
 *
 *  - the bench binaries (bench/fig3_snoop_vs_dir, ...) for direct
 *    command-line reproduction, and
 *  - the experiment service (src/service/), which receives a sweep
 *    request over a socket, executes it through this library, and
 *    memoizes the rendered output under a content-addressed key.
 *
 * Byte-identity between the two paths is by construction: both call
 * renderFigure() with the same FigureOptions, so the service can
 * legally serve a cached result where a direct run would recompute.
 *
 * Fault injection: a non-zero FigureOptions::faults is applied to the
 * *sim validation points* (the analytic-model series stay fault-free —
 * the model has no fault dimension). The all-zero default leaves every
 * figure byte-identical to builds without the fault subsystem.
 */

#ifndef RINGSIM_FIGURES_FIGURES_HPP
#define RINGSIM_FIGURES_FIGURES_HPP

#include <string>
#include <vector>

#include "core/system.hpp"
#include "fault/fault.hpp"
#include "model/bus_model.hpp"
#include "model/calibration.hpp"
#include "model/ring_model.hpp"
#include "util/table.hpp"

namespace ringsim::figures {

/** Processor cycle sweep of the figures, in ns (x axes, 1..20). */
const std::vector<double> &cycleSweepNs();

/** Columns of a figure table. */
TextTable makeFigureTable();

/** One rendered table row (the cells of makeFigureTable columns). */
using FigureRow = std::vector<std::string>;

/** Options one figure sweep runs under (a subset of bench flags). */
struct FigureOptions
{
    Count refs = 120'000;       //!< data references per processor
    std::uint64_t seed = 12345; //!< master workload seed
    bool fast = false;          //!< quarter-length traces
    unsigned jobs = 0;          //!< sweep worker threads; 0 = auto
    fault::FaultConfig faults;  //!< applied to sim validation points

    /**
     * Skip the timed sim validation points and emit the analytic
     * model series only. This is the service's degraded answer tier:
     * the model half of a figure costs milliseconds where the sim
     * half costs seconds, at the paper's ~15% accuracy envelope.
     */
    bool modelOnly = false;

    /** Apply refs/seed/fast to a workload preset. */
    void apply(trace::WorkloadConfig &cfg) const;
};

/**
 * Declarative figure sweep: register model series and sim validation
 * points, then run() them as parallel jobs.
 */
class FigureSweep
{
  public:
    explicit FigureSweep(const FigureOptions &opt) : opt_(opt) {}

    /** Register the model-swept series of one ring configuration. */
    void addRingSeries(const trace::WorkloadConfig &wl, Tick ring_period,
                       model::RingProtocol protocol,
                       const std::string &label);

    /** Register the model-swept series of one bus configuration. */
    void addBusSeries(const trace::WorkloadConfig &wl, Tick bus_period,
                      const std::string &label);

    /** Register the timed ring validation row (50 MIPS point). */
    void addRingSimPoint(const trace::WorkloadConfig &wl,
                         Tick ring_period, core::ProtocolKind kind,
                         const std::string &label);

    /** Register the timed bus validation row (50 MIPS point). */
    void addBusSimPoint(const trace::WorkloadConfig &wl, Tick bus_period,
                        const std::string &label);

    /**
     * Execute all registered blocks — calibrations first (one job per
     * distinct workload), then every series/sim block as its own job —
     * and return the assembled table. Uses opt.jobs workers.
     */
    TextTable run() const;

    /**
     * Number of registered blocks. The block index space is the unit
     * of fleet sweep sharding: a sweep job with part=i computes
     * exactly runBlock(i), and assemble() of all parts reproduces
     * run() byte-identically.
     */
    std::size_t blockCount() const { return blocks_.size(); }

    /**
     * Execute one registered block and return its rows. A series
     * block computes its own calibration census (model::calibrate is
     * deterministic, so a census recomputed on another worker yields
     * the same rows as run()'s shared phase-1 census). Under
     * opt.modelOnly a sim block returns no rows, mirroring run().
     * Panics on an out-of-range index — callers validate against
     * blockCount().
     */
    std::vector<FigureRow> runBlock(std::size_t index) const;

    /**
     * Assemble per-block row vectors (one entry per registered block,
     * in block-index order) into the figure table. assemble() of
     * runBlock(0..blockCount()-1) equals run() byte-for-byte, however
     * the blocks were partitioned across workers.
     */
    TextTable
    assemble(const std::vector<std::vector<FigureRow>> &rows_per_block)
        const;

  private:
    enum class BlockKind { RingSeries, BusSeries, RingSim, BusSim };

    struct Block
    {
        BlockKind kind;
        trace::WorkloadConfig wl;
        Tick period = 0;
        model::RingProtocol protocol = model::RingProtocol::Snoop;
        core::ProtocolKind simKind = core::ProtocolKind::RingSnoop;
        std::string label;
        std::size_t censusSlot = 0; //!< calibration index (series only)
        bool needsCensus = false;
    };

    std::size_t censusSlotFor(const trace::WorkloadConfig &wl);

    static std::vector<FigureRow>
    blockRows(const Block &block, const coherence::Census *census,
              const fault::FaultConfig &faults, bool model_only);

    FigureOptions opt_;
    std::vector<Block> blocks_;
    std::vector<trace::WorkloadConfig> calibrations_;
    std::vector<std::string> calibrationKeys_;
};

/** The figures this library can build. */
enum class FigureId {
    Fig3, //!< snooping vs directory, SPLASH 8/16/32
    Fig4, //!< snooping vs directory, FFT/WEATHER/SIMPLE at 64
    Fig6, //!< ring (250/500 MHz) vs bus (50/100 MHz)
};

/** "fig3"-style wire name. */
const char *figureName(FigureId id);

/**
 * Parse "fig3"/"fig4"/"fig6". Returns false (leaving @p out alone)
 * on an unknown name.
 */
[[nodiscard]] bool tryFigureFromName(const std::string &name,
                                     FigureId *out);

/** Title line of the figure's emitted table. */
std::string figureTitle(FigureId id);

/**
 * Build the registered sweep of @p id under @p opt. Fig6 optionally
 * includes CHOLESKY (the paper omits it for space).
 */
FigureSweep buildFigure(FigureId id, const FigureOptions &opt,
                        bool fig6_cholesky = false);

/**
 * Execute @p id and render the complete bench output (title line plus
 * table, or CSV when @p csv) exactly as the bench binary prints it.
 * This is the unit of work the experiment service caches.
 */
std::string renderFigure(FigureId id, const FigureOptions &opt,
                         bool csv = false, bool fig6_cholesky = false);

/** Block count of @p id under @p opt (the sweep-part index space). */
std::size_t figureBlockCount(FigureId id, const FigureOptions &opt,
                             bool fig6_cholesky = false);

/**
 * Execute one block of @p id (see FigureSweep::runBlock). This is the
 * unit of work a fleet worker performs for a sweep-part job.
 */
std::vector<FigureRow> runFigureBlock(FigureId id,
                                      const FigureOptions &opt,
                                      std::size_t block,
                                      bool fig6_cholesky = false);

/**
 * Render @p rows_per_block (one entry per block, in block order) into
 * the complete bench output. assembleFigure() over runFigureBlock()
 * results equals renderFigure() byte-for-byte — the contract that
 * legalizes fleet sweep splitting.
 */
std::string
assembleFigure(FigureId id, const FigureOptions &opt,
               const std::vector<std::vector<FigureRow>> &rows_per_block,
               bool csv = false, bool fig6_cholesky = false);

} // namespace ringsim::figures

#endif // RINGSIM_FIGURES_FIGURES_HPP
