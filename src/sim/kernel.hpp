/**
 * @file
 * Discrete-event simulation kernel.
 *
 * This is ringsim's substitute for the CSIM library the paper used: a
 * deterministic event-driven kernel with integer-picosecond time.
 * Components either derive from Event and reschedule themselves (cheap,
 * no allocation per firing — used by the per-cycle ring and bus models)
 * or post one-shot lambdas for occasional actions.
 *
 * Determinism: events that fire at the same tick are processed in the
 * order they were scheduled (a monotone sequence number breaks ties),
 * so a given configuration and seed always reproduces the same run.
 */

#ifndef RINGSIM_SIM_KERNEL_HPP
#define RINGSIM_SIM_KERNEL_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace ringsim::sim {

class Kernel;

/**
 * A reusable schedulable event. Derive and implement process().
 * An Event may be scheduled on at most one kernel at a time.
 */
class Event
{
  public:
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the kernel when the event fires. */
    virtual void process() = 0;

    /** True while the event sits in a kernel's queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick at which the event will fire (valid while scheduled). */
    Tick when() const { return when_; }

  protected:
    Event() = default;

  private:
    friend class Kernel;

    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t generation_ = 0;
};

/**
 * The event queue and simulated clock.
 */
class Kernel
{
  public:
    Kernel() = default;
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a reusable event at absolute time @p when (>= now).
     * The event must not already be scheduled.
     */
    void schedule(Event &event, Tick when);

    /** Schedule a reusable event @p delta ticks from now. */
    void scheduleIn(Event &event, Tick delta) {
        schedule(event, now_ + delta);
    }

    /** Remove a scheduled event from the queue. */
    void deschedule(Event &event);

    /** Post a one-shot callback at absolute time @p when (>= now). */
    void post(Tick when, std::function<void()> fn);

    /** Post a one-shot callback @p delta ticks from now. */
    void postIn(Tick delta, std::function<void()> fn) {
        post(now_ + delta, std::move(fn));
    }

    /**
     * Run until the queue drains, @p until is reached, or stop() is
     * called. Events scheduled exactly at @p until still fire.
     *
     * @return the number of events processed.
     */
    Count run(Tick until = ~Tick(0));

    /** Process exactly one event. @return false if the queue is empty. */
    bool runOne();

    /** Ask run() to return after the current event completes. */
    void stop() { stopping_ = true; }

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Events currently pending. */
    Count pending() const { return live_; }

    /** Total events processed since construction. */
    Count processed() const { return processed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;          // null for one-shot lambdas
        std::uint64_t generation;
        std::function<void()> fn;

        bool operator>(const Entry &other) const {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /** Pop entries until one is live; fire it. Queue must be nonempty. */
    void fireNext();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Count live_ = 0;
    Count processed_ = 0;
    bool stopping_ = false;
};

/**
 * Calls a handler every @p period ticks, starting at @p start.
 * The cycle-level ring and bus models are built on this.
 */
class Ticker : public Event
{
  public:
    /**
     * @param kernel kernel to run on.
     * @param period distance between firings, in ticks (> 0).
     * @param handler called once per firing with the current cycle
     *        index (0, 1, 2, ...).
     */
    Ticker(Kernel &kernel, Tick period,
           std::function<void(Count cycle)> handler);

    /** Begin ticking; first firing at absolute time @p start. */
    void start(Tick start_at);

    /** Stop ticking (idempotent). */
    void stop();

    /** Ticks between firings. */
    Tick period() const { return period_; }

    /** Index of the next cycle to fire. */
    Count cycle() const { return cycle_; }

    void process() override;

  private:
    Kernel &kernel_;
    Tick period_;
    Count cycle_ = 0;
    std::function<void(Count)> handler_;
};

} // namespace ringsim::sim

#endif // RINGSIM_SIM_KERNEL_HPP
