/**
 * @file
 * Discrete-event simulation kernel.
 *
 * This is ringsim's substitute for the CSIM library the paper used: a
 * deterministic event-driven kernel with integer-picosecond time.
 * Components either derive from Event and reschedule themselves (cheap,
 * no allocation per firing — used by the per-cycle ring and bus models)
 * or post one-shot lambdas for occasional actions.
 *
 * Determinism: events that fire at the same tick are processed in the
 * order they were scheduled (a monotone sequence number breaks ties),
 * so a given configuration and seed always reproduces the same run.
 *
 * The pending set is a two-tier structure tuned for the dominant
 * schedule pattern (per-cycle reschedules a few ring/bus/processor
 * periods ahead):
 *
 *  - a timing wheel of power-of-two tick buckets covering a near
 *    horizon past now(); insertion is an O(1) append, and a bucket is
 *    sorted once when the clock reaches it;
 *  - a binary heap for the rare far-future events beyond the horizon.
 *
 * One-shot callables are stored in pooled nodes with inline storage
 * (falling back to one heap allocation only for oversized captures),
 * so the steady-state hot path performs no allocation at all.
 */

#ifndef RINGSIM_SIM_KERNEL_HPP
#define RINGSIM_SIM_KERNEL_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace ringsim::sim {

class Kernel;

/**
 * A reusable schedulable event. Derive and implement process().
 * An Event may be scheduled on at most one kernel at a time.
 */
class Event
{
  public:
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the kernel when the event fires. */
    virtual void process() = 0;

    /** True while the event sits in a kernel's queue. */
    bool scheduled() const { return scheduled_; }

    /** Tick at which the event will fire (valid while scheduled). */
    Tick when() const { return when_; }

  protected:
    Event() = default;

  private:
    friend class Kernel;

    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t generation_ = 0;
};

/** Counters the kernel keeps about its own operation. */
struct KernelStats
{
    /** Events processed since construction. */
    Count processed = 0;

    /** One-shot callbacks among @ref processed. */
    Count oneShots = 0;

    /** Entries that took the near-horizon wheel path. */
    Count nearScheduled = 0;

    /** Entries that took the far-future heap path. */
    Count farScheduled = 0;

    /** High-water mark of simultaneously pending events. */
    Count maxPending = 0;

    /** Wall-clock seconds spent inside run(). */
    double runSeconds = 0;

    /** Events fired per wall-clock second inside run() (0 if unknown). */
    double eventsPerSecond() const {
        return runSeconds > 0 ? static_cast<double>(processed) / runSeconds
                              : 0.0;
    }
};

/**
 * The event queue and simulated clock.
 */
class Kernel
{
  public:
    /** Sentinel returned when no event (or no run limit) exists. */
    static constexpr Tick kNoEvent = ~Tick(0);

    Kernel();
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Fire time of the earliest pending event, or kNoEvent. */
    Tick nextEventTime();

    /**
     * Fire time of the earliest pending event other than @p event, or
     * kNoEvent. Used by self-rescheduling components (the ring ticker)
     * to see how far away the rest of the system is. If @p event is
     * scheduled it is briefly removed and re-added at its original
     * tick; this refreshes its tie-break order among same-tick events,
     * so callers must invoke this only from contexts where no other
     * event was scheduled since @p event was (e.g. from within the
     * event's own process()).
     */
    Tick nextEventTimeExcluding(Event &event);

    /**
     * The @c until bound of the run() currently executing, or kNoEvent
     * outside run() / when run() was called without a bound.
     */
    Tick runLimit() const { return runUntil_; }

    /**
     * Schedule a reusable event at absolute time @p when (>= now).
     * The event must not already be scheduled.
     */
    void schedule(Event &event, Tick when);

    /** Schedule a reusable event @p delta ticks from now. */
    void scheduleIn(Event &event, Tick delta) {
        schedule(event, now_ + delta);
    }

    /** Post a one-shot callable at absolute time @p when (>= now). */
    template <typename F>
    void post(Tick when, F fn) {
        static_assert(std::is_invocable_v<F &>,
                      "one-shot callables take no arguments");
        OneShot &shot = acquireShot();
        if constexpr (sizeof(F) <= kShotInlineBytes &&
                      alignof(F) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(shot.storage)) F(std::move(fn));
            shot.invoke = [](OneShot &s, Kernel &k) {
                F *f = std::launder(
                    reinterpret_cast<F *>(s.storage));
                (*f)();
                f->~F();
                k.releaseShot(s);
            };
            shot.destroy = [](OneShot &s) {
                std::launder(reinterpret_cast<F *>(s.storage))->~F();
            };
        } else {
            // Oversized capture: one heap allocation, pointer inline.
            F *heap = new F(std::move(fn));
            ::new (static_cast<void *>(shot.storage)) (F *)(heap);
            shot.invoke = [](OneShot &s, Kernel &k) {
                F *f = *std::launder(
                    reinterpret_cast<F **>(s.storage));
                (*f)();
                delete f;
                k.releaseShot(s);
            };
            shot.destroy = [](OneShot &s) {
                delete *std::launder(
                    reinterpret_cast<F **>(s.storage));
            };
        }
        postShot(when, shot);
    }

    /** Post a one-shot callable @p delta ticks from now. */
    template <typename F>
    void postIn(Tick delta, F fn) {
        post(now_ + delta, std::move(fn));
    }

    /** Remove a scheduled event from the queue. */
    void deschedule(Event &event);

    /**
     * Run until the queue drains, @p until is reached, or stop() is
     * called. Events scheduled exactly at @p until still fire.
     *
     * @return the number of events processed.
     */
    Count run(Tick until = ~Tick(0));

    /** Process exactly one event. @return false if the queue is empty. */
    bool runOne();

    /**
     * If @p event's pending firing is the globally next entry the run
     * loop would fire — earliest (when, seq), within the current
     * run() bound, with no stop() requested — consume it: remove it
     * from the queue, advance now() to its tick, and count it as
     * processed, WITHOUT invoking process(). Returns true on
     * consumption; the caller (the event's own process(), typically a
     * batched Ticker) then performs the firing's work itself.
     *
     * This is the saturated-path counterpart of Ticker::fastForward:
     * a self-rescheduling component that just ran can keep running
     * back-to-back firings in one kernel dispatch, with an event
     * stream byte-identical to the one-dispatch-per-firing execution
     * (the entry consumed is exactly the one the run loop's peek
     * would have chosen; seq assignment is unchanged because the
     * reschedule already happened). Only legal from within run().
     */
    bool consumeIfNext(Event &event) {
        if (phantom_ == &event && live_ == 1 && consumeOk_ &&
            event.when_ <= runUntil_) {
            // The phantom is the only pending entry: trivially next,
            // and it never touched the wheel — consume is a few
            // writes. (scheduled_ holds by the phantom invariant.)
            phantom_ = nullptr;
            event.scheduled_ = false;
            --live_;
            now_ = event.when_;
            ++stats_.processed;
            return true;
        }
        return consumeIfNextSlow(event);
    }

    /**
     * Schedule @p event exactly like schedule(), but — when the firing
     * lands in the near wheel — keep it as a *phantom*: every
     * observable effect (scheduled(), when(), pending(), sequence
     * assignment, statistics) is as if the entry were enqueued, yet
     * the wheel itself is untouched. The entry is materialized into
     * the wheel on demand the moment anything inspects the queue, so
     * no other kernel API can tell the difference. The payoff: a
     * consumeIfNext() of the same event while it is still the only
     * pending one collapses the schedule/consume round-trip to a few
     * flag writes — the batched Ticker's per-cycle kernel cost.
     * At most one phantom exists; scheduling a second materializes
     * the first. Far-horizon times fall back to a plain schedule().
     *
     * Inline: together with the consumeIfNext() fast path this is the
     * entire per-cycle kernel cost of a batched Ticker, so both
     * common paths live in the header.
     */
    void phantomSchedule(Event &event, Tick when) {
        if (event.scheduled_ || when < now_ || phantom_ ||
            bucketIndex(when) >= bucketIndex(now_) + kWheelBuckets) {
            phantomScheduleSlow(event, when);
            return;
        }
        event.scheduled_ = true;
        event.when_ = when;
        ++event.generation_;
        phantomSeq_ = nextSeq_++;
        phantom_ = &event;
        ++live_;
        // Branch form: on the steady cycle loop live_ never exceeds
        // the recorded peak, so this predicts untaken and skips the
        // store a std::max would make unconditionally.
        if (live_ > stats_.maxPending)
            stats_.maxPending = live_;
        ++stats_.nearScheduled;
    }

    /** Ask run() to return after the current event completes. */
    void stop()
    {
        stopping_ = true;
        consumeOk_ = false;
    }

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Events currently pending. */
    Count pending() const { return live_; }

    /** Total events processed since construction. */
    Count processed() const { return stats_.processed; }

    /** Operation counters (throughput, queue depth, tier usage). */
    const KernelStats &stats() const { return stats_; }

  private:
    /** Near-horizon wheel geometry: 512 buckets of 2048 ticks each
     *  (~1 µs horizon) — several ring, bus and processor periods. */
    static constexpr unsigned kBucketBits = 11;
    static constexpr std::size_t kWheelBuckets = 512;
    static constexpr std::size_t kWheelMask = kWheelBuckets - 1;

    /** Inline payload bytes of a pooled one-shot node. */
    static constexpr std::size_t kShotInlineBytes = 48;

    struct OneShot
    {
        OneShot *next = nullptr;
        /** Move the payload out, destroy it, recycle the node, run. */
        void (*invoke)(OneShot &, Kernel &) = nullptr;
        /** Destroy the payload without running it (kernel teardown). */
        void (*destroy)(OneShot &) = nullptr;
        alignas(std::max_align_t) unsigned char storage[kShotInlineBytes];
    };

    /** A pending firing: either a reusable Event or a one-shot. */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;          // null for one-shots
        std::uint64_t generation;
        OneShot *shot;         // null for reusable events

        bool operator>(const Entry &other) const {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    struct Bucket
    {
        std::vector<Entry> entries;
        std::size_t head = 0;   // consumed prefix while active
        bool sorted = false;
    };

    /** Where peekNext() found the next firing. */
    struct NextRef
    {
        const Entry *entry = nullptr;
        Bucket *bucket = nullptr;   // null → far heap top
    };

    static std::uint64_t bucketIndex(Tick when) {
        return when >> kBucketBits;
    }

    /** True if the entry was invalidated by deschedule()/reschedule. */
    static bool stale(const Entry &e) {
        return e.event &&
               (!e.event->scheduled_ ||
                e.event->generation_ != e.generation);
    }

    void enqueue(Entry entry);
    /** Wheel insertion alone (no live_/stats accounting). */
    void insertNear(Entry entry);
    /** Move the pending phantom (if any) into the wheel. */
    void materializePhantom();
    /** phantomSchedule() off the common path (panics, existing
     *  phantom, far horizon). */
    void phantomScheduleSlow(Event &event, Tick when);
    /** consumeIfNext() off the common path (wheel entries present). */
    bool consumeIfNextSlow(Event &event);
    void postShot(Tick when, OneShot &shot);

    /** Next live near-tier entry (purging stale ones), or null. */
    NextRef peekNear();

    /** Next live entry across both tiers, or {null,null}. */
    NextRef peekNext();

    /** Remove @p next from its tier, advance now(), count it. */
    Entry popEntry(const NextRef &next);

    /** Remove @p next from its tier and fire it. */
    void fire(const NextRef &next);

    OneShot &acquireShot();
    void releaseShot(OneShot &shot);

    std::array<Bucket, kWheelBuckets> wheel_;
    std::size_t nearSize_ = 0;      // physical wheel entries (incl. stale)
    std::uint64_t hintBucket_ = 0;  // no wheel entry below this index
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> far_;

    /** Self-scheduled event not yet inserted into the wheel (it is
     *  counted in live_ and stats; phantomSeq_ holds its tie-break
     *  sequence number for when it must be materialized). */
    Event *phantom_ = nullptr;
    std::uint64_t phantomSeq_ = 0;

    Tick now_ = 0;
    Tick runUntil_ = kNoEvent;
    std::uint64_t nextSeq_ = 0;
    Count live_ = 0;
    bool stopping_ = false;
    bool inRun_ = false;   // consumeIfNext is only legal inside run()
    /** == inRun_ && !stopping_, kept current where either changes:
     *  one load on the per-cycle self-consume path. */
    bool consumeOk_ = false;
    KernelStats stats_;

    OneShot *freeShots_ = nullptr;
    std::vector<std::unique_ptr<OneShot[]>> shotBlocks_;
};

/**
 * Calls a handler every @p period ticks, starting at @p start.
 * The cycle-level ring and bus models are built on this.
 */
class Ticker : public Event
{
  public:
    /**
     * @param kernel kernel to run on.
     * @param period distance between firings, in ticks (> 0).
     * @param handler called once per firing with the current cycle
     *        index (0, 1, 2, ...).
     */
    Ticker(Kernel &kernel, Tick period,
           std::function<void(Count cycle)> handler);

    /**
     * For subclasses that override process() to call their target
     * directly instead of through the std::function (one indirect
     * call per cycle matters at ring rates). Such overrides must
     * replicate the schedule/consume protocol of Ticker::process
     * exactly; handler_ stays empty.
     */
    Ticker(Kernel &kernel, Tick period);

    /** Begin ticking; first firing at absolute time @p start. */
    void start(Tick start_at);

    /** Stop ticking (idempotent). */
    void stop();

    /**
     * Skip the next @p skip firings in O(1): the pending firing moves
     * @p skip periods later and the cycle index advances past the
     * skipped cycles, without the handler running for any of them.
     * The ticker must be running. A no-op when @p skip is zero.
     *
     * This is the quiescence primitive: a cycle-level model whose
     * skipped cycles are provably free of side effects (an empty ring
     * with no pending work) jumps over them instead of paying one
     * kernel dispatch per cycle.
     */
    void fastForward(Count skip);

    /** Ticks between firings. */
    Tick period() const { return period_; }

    /** Index of the next cycle to fire. */
    Count cycle() const { return cycle_; }

    /**
     * Let process() consume back-to-back firings in one kernel
     * dispatch via Kernel::consumeIfNext. Opt-in because it holds one
     * process() frame on the stack across the whole batch; the event
     * stream (firing order, times, seq assignment, stats().processed)
     * is identical either way.
     */
    void enableBatching() { batching_ = true; }

    void process() override;

  protected:
    // Protected, not private: devirtualizing subclasses (see the
    // handler-less constructor) reimplement the process() loop and
    // need the same state it uses.
    Kernel &kernel_;
    Tick period_;
    Count cycle_ = 0;
    bool batching_ = false;
    std::function<void(Count)> handler_;
};

} // namespace ringsim::sim

#endif // RINGSIM_SIM_KERNEL_HPP
