#include "kernel.hpp"

#include <algorithm>
#include <chrono>

#include "util/logging.hpp"

namespace ringsim::sim {

namespace {

/** Pooled one-shot nodes are allocated in blocks of this many. */
constexpr std::size_t kShotBlockSize = 64;

} // namespace

Event::~Event()
{
    // An event must not be destroyed while a kernel still references
    // it; the owner is responsible for descheduling first. We cannot
    // reach the kernel from here, so flag the misuse.
    if (scheduled_)
        panic("Event destroyed while still scheduled");
}

Kernel::Kernel() = default;

Kernel::~Kernel()
{
    // Destroy the payloads of any one-shots still pending; the pool
    // blocks themselves are owned by shotBlocks_.
    for (Bucket &bucket : wheel_) {
        for (std::size_t i = bucket.head; i < bucket.entries.size(); ++i) {
            Entry &e = bucket.entries[i];
            if (e.shot)
                e.shot->destroy(*e.shot);
        }
    }
    while (!far_.empty()) {
        const Entry &e = far_.top();
        if (e.shot)
            e.shot->destroy(*e.shot);
        far_.pop();
    }
}

void
Kernel::insertNear(Entry entry)
{
    std::uint64_t idx = bucketIndex(entry.when);
    Bucket &bucket = wheel_[idx & kWheelMask];
    // Appends arrive in (when, seq) order almost always (periodic
    // reschedules with monotone seq), so the bucket usually stays
    // sorted without ever calling sort.
    if (bucket.entries.empty()) {
        bucket.head = 0;
        bucket.sorted = true;
    } else if (bucket.sorted) {
        const Entry &back = bucket.entries.back();
        if (back > entry)
            bucket.sorted = false;
    }
    bucket.entries.push_back(entry);
    ++nearSize_;
    if (idx < hintBucket_)
        hintBucket_ = idx;
}

void
Kernel::enqueue(Entry entry)
{
    if (bucketIndex(entry.when) < bucketIndex(now_) + kWheelBuckets) {
        insertNear(entry);
        ++stats_.nearScheduled;
    } else {
        far_.push(entry);
        ++stats_.farScheduled;
    }
    ++live_;
    stats_.maxPending = std::max(stats_.maxPending, live_);
}

void
Kernel::materializePhantom()
{
    // live_ and the statistics already counted this entry at
    // phantomSchedule time; only the physical insertion was deferred.
    Event *e = phantom_;
    phantom_ = nullptr;
    insertNear(Entry{e->when_, phantomSeq_, e, e->generation_, nullptr});
}

void
Kernel::phantomScheduleSlow(Event &event, Tick when)
{
    if (event.scheduled_)
        panic("Event scheduled twice (when=%llu)",
              static_cast<unsigned long long>(when));
    if (when < now_)
        panic("Event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    if (phantom_)
        materializePhantom();
    // Far horizon: the deferred-insert dance buys nothing there.
    // (Near-horizon times only reach here via the materialize-first
    // case above, after which the inline fast path preconditions
    // hold again.)
    if (bucketIndex(when) >= bucketIndex(now_) + kWheelBuckets) {
        schedule(event, when);
        return;
    }
    event.scheduled_ = true;
    event.when_ = when;
    ++event.generation_;
    phantomSeq_ = nextSeq_++;
    phantom_ = &event;
    ++live_;
    stats_.maxPending = std::max(stats_.maxPending, live_);
    ++stats_.nearScheduled;
}

void
Kernel::schedule(Event &event, Tick when)
{
    if (event.scheduled_)
        panic("Event scheduled twice (when=%llu)",
              static_cast<unsigned long long>(when));
    if (when < now_)
        panic("Event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    event.scheduled_ = true;
    event.when_ = when;
    ++event.generation_;
    enqueue(Entry{when, nextSeq_++, &event, event.generation_, nullptr});
}

void
Kernel::deschedule(Event &event)
{
    if (!event.scheduled_)
        panic("deschedule of an unscheduled event");
    // A phantom has no queue entry to go stale; just forget it.
    if (&event == phantom_)
        phantom_ = nullptr;
    // Lazy removal: bump the generation so the stale queue entry is
    // skipped when reached.
    event.scheduled_ = false;
    ++event.generation_;
    --live_;
}

void
Kernel::postShot(Tick when, OneShot &shot)
{
    if (when < now_) {
        shot.destroy(shot);
        releaseShot(shot);
        panic("Callback posted in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    }
    enqueue(Entry{when, nextSeq_++, nullptr, 0, &shot});
}

Kernel::OneShot &
Kernel::acquireShot()
{
    if (!freeShots_) {
        auto block = std::make_unique<OneShot[]>(kShotBlockSize);
        for (std::size_t i = 0; i < kShotBlockSize; ++i) {
            block[i].next = freeShots_;
            freeShots_ = &block[i];
        }
        shotBlocks_.push_back(std::move(block));
    }
    OneShot &shot = *freeShots_;
    freeShots_ = shot.next;
    return shot;
}

void
Kernel::releaseShot(OneShot &shot)
{
    shot.next = freeShots_;
    freeShots_ = &shot;
}

Kernel::NextRef
Kernel::peekNear()
{
    // Queue inspection: the phantom must be physically present before
    // any comparison against wheel/heap entries.
    if (phantom_)
        materializePhantom();
    if (nearSize_ == 0)
        return {};
    // Scan forward from the lowest possibly-populated bucket. The loop
    // is bounded: nearSize_ > 0 guarantees an entry within the window
    // [hintBucket_, bucketIndex(now_) + kWheelBuckets).
    std::uint64_t b = hintBucket_;
    std::uint64_t limit = bucketIndex(now_) + kWheelBuckets;
    for (; b < limit; ++b) {
        Bucket &bucket = wheel_[b & kWheelMask];
        for (;;) {
            if (bucket.head >= bucket.entries.size()) {
                // Fully drained; recycle the storage for the next lap.
                bucket.entries.clear();
                bucket.head = 0;
                bucket.sorted = false;
                break;
            }
            if (!bucket.sorted) {
                bucket.entries.erase(
                    bucket.entries.begin(),
                    bucket.entries.begin() +
                        static_cast<std::ptrdiff_t>(bucket.head));
                bucket.head = 0;
                std::sort(bucket.entries.begin(), bucket.entries.end(),
                          [](const Entry &a, const Entry &b2) {
                              return b2 > a;
                          });
                bucket.sorted = true;
            }
            const Entry &e = bucket.entries[bucket.head];
            // Purge stale entries regardless of lap: lazily consumed
            // firings (consumeIfNext) can leave earlier-lap leftovers
            // behind when now() swept past this bucket unscanned.
            if (stale(e)) {
                ++bucket.head;
                --nearSize_;
                continue;
            }
            // A slot can also hold entries one wheel revolution ahead;
            // they sort to the tail, so the whole remainder belongs to
            // a later lap and this bucket is empty for now (a live
            // entry is never in the past, so an off-lap head entry
            // can only be a later lap).
            if (bucketIndex(e.when) != b)
                break;
            hintBucket_ = b;
            return {&e, &bucket};
        }
        if (nearSize_ == 0) {
            hintBucket_ = b + 1;
            return {};
        }
    }
    panic("event wheel scan found no entry (nearSize=%llu)",
          static_cast<unsigned long long>(nearSize_));
}

Kernel::NextRef
Kernel::peekNext()
{
    NextRef near = peekNear();
    // Purge stale far-heap tops so the comparison sees a live entry.
    while (!far_.empty() && stale(far_.top()))
        far_.pop();
    if (far_.empty())
        return near;
    const Entry &far_top = far_.top();
    if (!near.entry || far_top.when < near.entry->when ||
        (far_top.when == near.entry->when &&
         far_top.seq < near.entry->seq)) {
        return {&far_top, nullptr};
    }
    return near;
}

Kernel::Entry
Kernel::popEntry(const NextRef &next)
{
    Entry entry = *next.entry;
    if (next.bucket) {
        Bucket &bucket = *next.bucket;
        if (++bucket.head == bucket.entries.size()) {
            // Drained: recycle the storage (capacity is retained).
            bucket.entries.clear();
            bucket.head = 0;
            bucket.sorted = true;
        }
        --nearSize_;
    } else {
        far_.pop();
    }
    now_ = entry.when;
    --live_;
    ++stats_.processed;
    return entry;
}

void
Kernel::fire(const NextRef &next)
{
    Entry entry = popEntry(next);
    if (entry.event) {
        entry.event->scheduled_ = false;
        entry.event->process();
    } else {
        ++stats_.oneShots;
        entry.shot->invoke(*entry.shot, *this);
    }
}

bool
Kernel::consumeIfNextSlow(Event &event)
{
    if (!inRun_ || stopping_ || !event.scheduled_)
        return false;
    if (runUntil_ != kNoEvent && event.when_ > runUntil_)
        return false;
    if (phantom_ == &event) {
        // live_ > 1 (the inline path handles live_ == 1): other work
        // is pending, so a real comparison is needed.
        materializePhantom();
    }
    if (live_ == 1) {
        // The event's own firing is the only pending entry, so it is
        // trivially the one the run loop would pick. In the periodic
        // self-consume pattern the entry was pushed moments ago, so it
        // sits at the back of its wheel bucket: pop it eagerly — O(1),
        // no wheel scan, no heap pop, and crucially no stale residue
        // (a lazy consume per tick would flood the wheel with entries
        // nothing ever scans in steady state).
        std::uint64_t idx = bucketIndex(event.when_);
        if (idx < bucketIndex(now_) + kWheelBuckets) {
            Bucket &bucket = wheel_[idx & kWheelMask];
            if (bucket.head < bucket.entries.size()) {
                const Entry &back = bucket.entries.back();
                if (back.event == &event &&
                    back.generation == event.generation_) {
                    bucket.entries.pop_back();
                    --nearSize_;
                    if (bucket.head >= bucket.entries.size()) {
                        bucket.entries.clear();
                        bucket.head = 0;
                        bucket.sorted = true;
                    }
                    event.scheduled_ = false;
                    --live_;
                    now_ = event.when_;
                    ++stats_.processed;
                    // Only stale residue (if any) can remain below the
                    // hint; with a clean wheel, jump it to now so the
                    // end-of-run scan starts where the next entry lands.
                    if (nearSize_ == 0)
                        hintBucket_ = bucketIndex(now_);
                    return true;
                }
            }
        }
        // Entry not where expected (far heap, or something buried it):
        // consume lazily, deschedule-style — the stale entry is purged
        // whenever a scan next touches it.
        event.scheduled_ = false;
        ++event.generation_;
        --live_;
        now_ = event.when_;
        ++stats_.processed;
        return true;
    }
    NextRef next = peekNext();
    // peekNext purged stale entries, so a hit on this event is its one
    // live entry (generation necessarily matches).
    if (!next.entry || next.entry->event != &event)
        return false;
    popEntry(next);
    event.scheduled_ = false;
    return true;
}

Tick
Kernel::nextEventTime()
{
    NextRef next = peekNext();
    return next.entry ? next.entry->when : kNoEvent;
}

Tick
Kernel::nextEventTimeExcluding(Event &event)
{
    if (!event.scheduled_)
        return nextEventTime();
    Tick saved = event.when_;
    deschedule(event);
    Tick next = nextEventTime();
    schedule(event, saved);
    return next;
}

Count
Kernel::run(Tick until)
{
    stopping_ = false;
    Count fired = 0;
    Tick saved_limit = runUntil_;
    bool saved_in_run = inRun_;
    runUntil_ = until == ~Tick(0) ? kNoEvent : until;
    inRun_ = true;
    consumeOk_ = true;
    auto start = std::chrono::steady_clock::now();
    while (live_ > 0 && !stopping_) {
        NextRef next = peekNext();
        if (!next.entry || next.entry->when > until)
            break;
        fire(next);
        ++fired;
    }
    runUntil_ = saved_limit;
    inRun_ = saved_in_run;
    consumeOk_ = inRun_ && !stopping_;
    stats_.runSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return fired;
}

bool
Kernel::runOne()
{
    if (live_ == 0)
        return false;
    NextRef next = peekNext();
    if (!next.entry)
        return false;
    fire(next);
    return true;
}

Ticker::Ticker(Kernel &kernel, Tick period,
               std::function<void(Count)> handler)
    : kernel_(kernel), period_(period), handler_(std::move(handler))
{
    if (period_ == 0)
        panic("Ticker period must be nonzero");
}

Ticker::Ticker(Kernel &kernel, Tick period)
    : kernel_(kernel), period_(period)
{
    if (period_ == 0)
        panic("Ticker period must be nonzero");
}

void
Ticker::start(Tick start_at)
{
    if (scheduled())
        panic("Ticker started twice");
    kernel_.schedule(*this, start_at);
}

void
Ticker::stop()
{
    if (scheduled())
        kernel_.deschedule(*this);
}

void
Ticker::fastForward(Count skip)
{
    if (!scheduled())
        panic("fastForward on a stopped ticker");
    if (skip == 0)
        return;
    Tick at = when() + static_cast<Tick>(skip) * period_;
    kernel_.deschedule(*this);
    cycle_ += skip;
    kernel_.schedule(*this, at);
}

void
Ticker::process()
{
    if (!batching_) {
        Count this_cycle = cycle_++;
        // Reschedule before the handler so the handler may stop() us.
        kernel_.schedule(*this, kernel_.now() + period_);
        handler_(this_cycle);
        return;
    }
    for (;;) {
        Count this_cycle = cycle_++;
        // Reschedule before the handler so the handler may stop() us.
        // The phantom variant defers the wheel insertion, which the
        // self-consume below usually makes unnecessary altogether.
        kernel_.phantomSchedule(*this, kernel_.now() + period_);
        handler_(this_cycle);
        // Batched self-consume: if the firing we just scheduled is the
        // globally next one the run loop would pick anyway, take it
        // here and loop, skipping a full dispatch round-trip. The
        // handler may have stopped us (not scheduled), fast-forwarded
        // us (consume then fires at the jumped tick), or scheduled
        // other work due first (consume refuses; the run loop takes
        // over) — in every case the event stream is unchanged.
        if (!kernel_.consumeIfNext(*this))
            return;
    }
}

} // namespace ringsim::sim
