#include "kernel.hpp"

#include "util/logging.hpp"

namespace ringsim::sim {

Event::~Event()
{
    // An event must not be destroyed while a kernel still references
    // it; the owner is responsible for descheduling first. We cannot
    // reach the kernel from here, so flag the misuse.
    if (scheduled_)
        panic("Event destroyed while still scheduled");
}

Kernel::~Kernel() = default;

void
Kernel::schedule(Event &event, Tick when)
{
    if (event.scheduled_)
        panic("Event scheduled twice (when=%llu)",
              static_cast<unsigned long long>(when));
    if (when < now_)
        panic("Event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    event.scheduled_ = true;
    event.when_ = when;
    ++event.generation_;
    queue_.push(Entry{when, nextSeq_++, &event, event.generation_, {}});
    ++live_;
}

void
Kernel::deschedule(Event &event)
{
    if (!event.scheduled_)
        panic("deschedule of an unscheduled event");
    // Lazy removal: bump the generation so the stale queue entry is
    // skipped when popped.
    event.scheduled_ = false;
    ++event.generation_;
    --live_;
}

void
Kernel::post(Tick when, std::function<void()> fn)
{
    if (when < now_)
        panic("Callback posted in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    queue_.push(Entry{when, nextSeq_++, nullptr, 0, std::move(fn)});
    ++live_;
}

void
Kernel::fireNext()
{
    for (;;) {
        Entry entry = queue_.top();
        queue_.pop();
        if (entry.event) {
            // Skip entries invalidated by deschedule()/reschedule.
            if (!entry.event->scheduled_ ||
                entry.event->generation_ != entry.generation) {
                continue;
            }
            now_ = entry.when;
            entry.event->scheduled_ = false;
            --live_;
            ++processed_;
            entry.event->process();
            return;
        }
        now_ = entry.when;
        --live_;
        ++processed_;
        entry.fn();
        return;
    }
}

Count
Kernel::run(Tick until)
{
    stopping_ = false;
    Count fired = 0;
    while (live_ > 0 && !stopping_) {
        // Peek past stale entries to find the next live firing time.
        while (!queue_.empty()) {
            const Entry &top = queue_.top();
            if (top.event &&
                (!top.event->scheduled_ ||
                 top.event->generation_ != top.generation)) {
                queue_.pop();
                continue;
            }
            break;
        }
        if (queue_.empty())
            break;
        if (queue_.top().when > until)
            break;
        fireNext();
        ++fired;
    }
    return fired;
}

bool
Kernel::runOne()
{
    while (!queue_.empty()) {
        const Entry &top = queue_.top();
        if (top.event &&
            (!top.event->scheduled_ ||
             top.event->generation_ != top.generation)) {
            queue_.pop();
            continue;
        }
        fireNext();
        return true;
    }
    return false;
}

Ticker::Ticker(Kernel &kernel, Tick period,
               std::function<void(Count)> handler)
    : kernel_(kernel), period_(period), handler_(std::move(handler))
{
    if (period_ == 0)
        panic("Ticker period must be nonzero");
}

void
Ticker::start(Tick start_at)
{
    if (scheduled())
        panic("Ticker started twice");
    kernel_.schedule(*this, start_at);
}

void
Ticker::stop()
{
    if (scheduled())
        kernel_.deschedule(*this);
}

void
Ticker::process()
{
    Count this_cycle = cycle_++;
    // Reschedule before the handler so the handler may stop() us.
    kernel_.schedule(*this, kernel_.now() + period_);
    handler_(this_cycle);
}

} // namespace ringsim::sim
