/**
 * @file
 * Timed full-map directory protocol for the slotted ring (Section 3.2).
 *
 * All requests go point-to-point to the home node, which owns the
 * full-map directory entry (presence bits + dirty bit). Clean blocks
 * are served from the home's memory; dirty blocks are forwarded to
 * the owning cache, which supplies the requester directly. Write
 * misses and invalidations to blocks with presence bits set launch a
 * full-ring multicast invalidation whose return the home awaits
 * before responding — the source of the protocol's 2-traversal
 * transactions and its non-uniform latencies.
 */

#ifndef RINGSIM_CORE_RING_DIRECTORY_HPP
#define RINGSIM_CORE_RING_DIRECTORY_HPP

#include "core/protocol_table.hpp"
#include "core/ring_protocol.hpp"

namespace ringsim::core {

/** The directory controller set. */
class RingDirectoryProtocol : public RingProtocolBase
{
  public:
    using RingProtocolBase::RingProtocolBase;

  protected:
    void launch(Txn &txn) override;

    /**
     * Only reached for occupied slots (see RingProtocolBase: the ring
     * skips empty-slot visits to nodes with nothing queued).
     */
    void handleMessage(NodeId n, ring::SlotHandle &slot) override;

  private:
    /** This transaction's row of the shared directory table. */
    ptable::DirPlan planOf(const Txn &txn) const;

    /** Directory actions at the home node (after the lookup delay). */
    void homeActions(std::uint64_t tag);

    /** Send the block (or ack) that completes the transaction. */
    void respond(std::uint64_t tag, NodeId from, Tick when);
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_RING_DIRECTORY_HPP
