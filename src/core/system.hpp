/**
 * @file
 * Full-system assembly and run driver.
 *
 * Builds a complete timed system — synthetic trace streams, blocking
 * processors, the chosen coherence protocol, and the slotted ring or
 * split-transaction bus — runs it with a warmup window, and returns
 * the measurements the paper's figures plot. The measurement window
 * opens when every processor has passed its warmup prefix and closes
 * when the first processor exhausts its stream (so all processors are
 * active for the whole window).
 */

#ifndef RINGSIM_CORE_SYSTEM_HPP
#define RINGSIM_CORE_SYSTEM_HPP

#include <memory>

#include "coherence/census.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "trace/workload.hpp"

namespace ringsim::core {

/** What one timed run measured. */
struct RunResult
{
    /** Protocol and interconnect that produced this result. */
    ProtocolKind protocol = ProtocolKind::RingSnoop;

    /** Mean processor utilization (Figures 3/4/6, top row). */
    double procUtilization = 0;

    /** Ring slot / bus utilization (Figures 3/4/6, middle row). */
    double networkUtilization = 0;

    /** Mean remote-miss latency in ns (Figures 3/4/6, bottom row). */
    double missLatencyNs = 0;

    /** Mean miss latency including local misses, ns. */
    double missLatencyAllNs = 0;

    /** Mean invalidation latency, ns. */
    double upgradeLatencyNs = 0;

    /** Mean slot/arbiter acquisition wait, ns. */
    double acquireWaitNs = 0;

    /** Measurement window length in ticks. */
    Tick window = 0;

    /** Figure 5 class counts measured in the window. */
    Count localMisses = 0;
    Count cleanMiss1 = 0;
    Count dirtyMiss1 = 0;
    Count miss2 = 0;
    Count upgrades = 0;

    /** Post-warmup coherence census (for model calibration checks). */
    coherence::Census census;

    /**
     * Fault-injection outcome (all zero when injection is disabled, so
     * fault-free results stay identical to runs without the subsystem).
     */
    Count faultsInjected = 0; //!< corruptions + drops applied
    Count retries = 0;        //!< transaction relaunches
    Count recovered = 0;      //!< transactions completed after retries
    Count fatalTxns = 0;      //!< transactions that exhausted retries
    Count nacks = 0;          //!< NACKs sent for corrupt messages
    Count timeouts = 0;       //!< watchdog expirations

    /** Fraction of remote misses in class (clean1, dirty1, two). */
    double cleanMiss1Frac() const;
    double dirtyMiss1Frac() const;
    double miss2Frac() const;
};

/**
 * Run @p workload on a slotted ring with the given protocol.
 * @p kind must be RingSnoop or RingDirectory.
 */
RunResult runRingSystem(const RingSystemConfig &config,
                        const trace::WorkloadConfig &workload,
                        ProtocolKind kind);

/** Run @p workload on the split-transaction snooping bus. */
RunResult runBusSystem(const BusSystemConfig &config,
                       const trace::WorkloadConfig &workload);

} // namespace ringsim::core

#endif // RINGSIM_CORE_SYSTEM_HPP
