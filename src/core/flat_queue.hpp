/**
 * @file
 * Flat FIFO queue for protocol hot paths.
 *
 * The per-node, per-slot-type insert queues sit on the ring's
 * per-visit path (tryInsert peeks the front on every empty-slot
 * offer), where std::deque's segmented storage costs an extra
 * indirection per touch and scatters queue heads across the heap.
 * FlatQueue is a power-of-two circular buffer: front() is one load
 * from contiguous storage, push/pop are an index increment, and the
 * whole control block is cache-line-aligned so neighboring queues in a
 * vector never share a line. Growth relinearizes into a doubled
 * buffer; indices are free-running 32-bit counters (differences are
 * exact under wrap-around because the capacity divides 2^32).
 *
 * This is the approved alternative wherever the `hot-path-deque` lint
 * rule (scripts/lint_rules.py) fires.
 */

#ifndef RINGSIM_CORE_FLAT_QUEUE_HPP
#define RINGSIM_CORE_FLAT_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace ringsim::core {

template <typename T>
class alignas(64) FlatQueue
{
  public:
    bool empty() const { return head_ == tail_; }

    std::size_t size() const {
        return static_cast<std::uint32_t>(tail_ - head_);
    }

    T &front() {
        if (empty())
            panic("front() on an empty FlatQueue");
        return buf_[head_ & mask()];
    }

    const T &front() const {
        if (empty())
            panic("front() on an empty FlatQueue");
        return buf_[head_ & mask()];
    }

    void push_back(const T &value) {
        if (size() == buf_.size())
            grow();
        buf_[tail_++ & mask()] = value;
    }

    void push_back(T &&value) {
        if (size() == buf_.size())
            grow();
        buf_[tail_++ & mask()] = std::move(value);
    }

    void pop_front() {
        if (empty())
            panic("pop_front() on an empty FlatQueue");
        ++head_;
    }

  private:
    std::uint32_t mask() const {
        return static_cast<std::uint32_t>(buf_.size()) - 1;
    }

    void grow() {
        std::size_t n = size();
        std::vector<T> bigger(buf_.empty() ? kInitialCapacity
                                           : buf_.size() * 2);
        for (std::size_t i = 0; i < n; ++i)
            bigger[i] = std::move(
                buf_[(head_ + static_cast<std::uint32_t>(i)) & mask()]);
        buf_ = std::move(bigger);
        head_ = 0;
        tail_ = static_cast<std::uint32_t>(n);
    }

    static constexpr std::size_t kInitialCapacity = 8;

    std::vector<T> buf_;
    std::uint32_t head_ = 0;
    std::uint32_t tail_ = 0;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_FLAT_QUEUE_HPP
