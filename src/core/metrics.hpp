/**
 * @file
 * Per-run measurement record for the timed systems.
 *
 * Collects exactly what Figures 3, 4 and 6 plot: per-processor busy
 * and stall time (=> processor utilization), miss latencies broken
 * down by the Figure 5 classes, invalidation latencies, and slot/bus
 * acquisition waits. Network utilization comes from the interconnect
 * components themselves.
 */

#ifndef RINGSIM_CORE_METRICS_HPP
#define RINGSIM_CORE_METRICS_HPP

#include <vector>

#include "stats/stats.hpp"
#include "util/units.hpp"

namespace ringsim::core {

/** Latency class of a completed transaction (Figure 5 naming). */
enum class LatClass {
    LocalMiss,  //!< served by the local memory bank, no network
    CleanMiss1, //!< clean block, remote home, one traversal
    DirtyMiss1, //!< dirty block, one traversal
    Miss2,      //!< two-traversal miss
    Upgrade,    //!< invalidation (processor blocks on these too)
};

/** Printable class name. */
const char *latClassName(LatClass c);

/** Measurements of one timed run. */
class Metrics
{
  public:
    explicit Metrics(unsigned procs);

    /** Processor @p p executed for @p t ticks. */
    void addBusy(NodeId p, Tick t) { busy_[p] += t; }

    /** Processor @p p stalled for @p t ticks. */
    void addStall(NodeId p, Tick t) { stall_[p] += t; }

    /** Record a completed transaction of class @p cls. */
    void addLatency(LatClass cls, Tick latency);

    /** Record a slot/bus acquisition wait. */
    void addAcquireWait(Tick wait) { acquireWait_.add(
        static_cast<double>(wait)); }

    /** Zero all measurements (end of warmup). */
    void reset();

    /** Number of processors. */
    unsigned procs() const {
        return static_cast<unsigned>(busy_.size());
    }

    /** Busy ticks of processor @p p. */
    Tick busy(NodeId p) const { return busy_[p]; }

    /** Stall ticks of processor @p p. */
    Tick stall(NodeId p) const { return stall_[p]; }

    /** Utilization of processor @p p (busy / (busy + stall)). */
    double procUtilization(NodeId p) const;

    /** Mean utilization over all processors. */
    double meanProcUtilization() const;

    /** Latency sampler of one class. */
    const stats::Sampler &latency(LatClass cls) const;

    /**
     * Mean latency over all data-fetch miss classes that used the
     * network — the paper's "average miss latency" (remote misses).
     */
    double meanMissLatency() const;

    /** Mean latency including local misses. */
    double meanMissLatencyAll() const;

    /** Mean invalidation (upgrade) latency. */
    double meanUpgradeLatency() const {
        return latency(LatClass::Upgrade).mean();
    }

    /** Slot/bus acquisition wait sampler. */
    const stats::Sampler &acquireWait() const { return acquireWait_; }

    /** Completed transactions of class @p cls. */
    Count classCount(LatClass cls) const {
        return latency(cls).count();
    }

  private:
    std::vector<Tick> busy_;
    std::vector<Tick> stall_;
    stats::Sampler lat_[5];
    stats::Sampler acquireWait_;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_METRICS_HPP
