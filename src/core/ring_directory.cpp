#include "ring_directory.hpp"

#include "coherence/classify.hpp"
#include "util/logging.hpp"

namespace ringsim::core {

using coherence::AccessOutcome;

ptable::DirPlan
RingDirectoryProtocol::planOf(const Txn &txn) const
{
    const AccessOutcome &o = txn.outcome;
    return ptable::dirPlan(nodes_, txn.requester, o.home, o.owner,
                           ptable::viewOf(o, txn.requester));
}

void
RingDirectoryProtocol::launch(Txn &txn)
{
    const AccessOutcome &o = txn.outcome;
    const ptable::DirPlan plan = planOf(txn);
    txn.cls = plan.cls;
    txn.remainingLegs = 1;

    std::uint64_t tag = tagOf(txn);
    if (!plan.requestLeg) {
        // The home is local: run the directory actions directly.
        kernel_.post(kernel_.now() + config_.dirLookup,
                     [this, tag]() { homeActions(tag); });
        return;
    }

    ring::RingMessage req;
    req.kind = MsgDirRequest;
    req.src = txn.requester;
    req.dst = o.home;
    req.addr = o.block;
    req.payload = tag;
    enqueue(txn.requester, req, /*is_block=*/false);
}

void
RingDirectoryProtocol::respond(std::uint64_t tag, NodeId from,
                               Tick when)
{
    Txn *txn =
        requireTxn(tag, "directory respond for finished transaction");
    if (!txn)
        return;

    if (txn->requester == from) {
        // Requester is the responder (local home): no message needed.
        kernel_.post(when, [this, tag]() { legDone(tag); });
        return;
    }

    bool data = planOf(*txn).respondData;
    ring::RingMessage msg;
    msg.kind = data ? MsgBlockData : MsgDirAck;
    msg.src = from;
    msg.dst = txn->requester;
    msg.addr = txn->outcome.block;
    msg.payload = tag;
    kernel_.post(when, [this, from, msg]() {
        enqueue(from, msg, msg.kind == MsgBlockData);
    });
}

void
RingDirectoryProtocol::homeActions(std::uint64_t tag)
{
    Txn *txn = requireTxn(
        tag, "directory homeActions for finished transaction");
    if (!txn)
        return;
    const AccessOutcome &o = txn->outcome;
    const ptable::DirPlan plan = planOf(*txn);
    NodeId home = o.home;
    Tick now = kernel_.now();

    if (plan.forwardToOwner) {
        // Forward to the owning cache; it answers the requester.
        ring::RingMessage fwd;
        fwd.kind = MsgDirForward;
        fwd.src = home;
        fwd.dst = o.owner;
        fwd.addr = o.block;
        fwd.payload = tag;
        enqueue(home, fwd, /*is_block=*/false);
        return;
    }

    if (plan.multicast) {
        // Launch the full-ring invalidation; overlap the memory fetch
        // (the response still waits for the multicast's return).
        if (plan.homeBankFetch) {
            txn->dataReadyAt =
                bankDone(home, now, config_.memoryLatency);
        } else {
            txn->dataReadyAt = now;
        }
        ring::RingMessage inv;
        inv.kind = MsgDirMulticast;
        inv.src = home;
        inv.dst = ring::broadcastNode;
        inv.addr = o.block;
        inv.payload = tag;
        enqueue(home, inv, /*is_block=*/false);
        return;
    }

    if (!plan.homeBankFetch) {
        // Upgrade with no sharers: acknowledge immediately.
        respond(tag, home, now);
        return;
    }

    // Clean data from the home memory.
    Tick ready = bankDone(home, now, config_.memoryLatency);
    respond(tag, home, ready);
}

void
RingDirectoryProtocol::handleMessage(NodeId n, ring::SlotHandle &slot)
{
    const ring::RingMessage &msg = slot.message();
    switch (msg.kind) {
      case MsgDirRequest: {
        if (msg.dst != n)
            return;
        ring::RingMessage req = slot.remove();
        std::uint64_t tag = req.payload;
        Tick tail = ring_.slotTailTime(slot.type());
        kernel_.post(kernel_.now() + tail + config_.dirLookup,
                     [this, tag]() { homeActions(tag); });
        return;
      }
      case MsgDirForward: {
        if (msg.dst != n)
            return;
        ring::RingMessage fwd = slot.remove();
        std::uint64_t tag = fwd.payload;
        Txn *txn = requireTxn(
            tag, "directory forward for finished transaction");
        if (!txn)
            return;
        Tick tail = ring_.slotTailTime(slot.type());
        Tick ready = kernel_.now() + tail + config_.cacheSupply;
        respond(tag, n, ready);

        // A read of a dirty block also refreshes the home memory; if
        // the home is not on the owner->requester path the owner
        // sends a separate copy.
        const AccessOutcome &o = txn->outcome;
        if (!o.isWrite &&
            coherence::dirRefreshCopy(nodes_, n, txn->requester,
                                      o.home)) {
            ring::RingMessage copy;
            copy.kind = MsgBlockTraffic;
            copy.src = n;
            copy.dst = o.home;
            copy.addr = o.block;
            copy.payload = 0;
            NodeId owner = n;
            kernel_.post(ready, [this, owner, copy]() {
                enqueue(owner, copy, /*is_block=*/true);
            });
        }
        return;
      }
      case MsgDirMulticast: {
        if (msg.src != n)
            return; // invalidations were applied at issue; pass on
        ring::RingMessage inv = slot.remove();
        std::uint64_t tag = inv.payload;
        Txn *txn = requireTxn(
            tag, "directory multicast for finished transaction");
        if (!txn)
            return;
        Tick when = std::max(kernel_.now(), txn->dataReadyAt);
        respond(tag, n, when);
        return;
      }
      case MsgDirAck: {
        if (msg.dst != n)
            return;
        ring::RingMessage ack = slot.remove();
        Tick tail = ring_.slotTailTime(slot.type());
        std::uint64_t tag = ack.payload;
        kernel_.post(kernel_.now() + tail,
                     [this, tag]() { legDone(tag); });
        return;
      }
      case MsgBlockData: {
        if (msg.dst != n)
            return;
        ring::RingMessage data = slot.remove();
        Tick tail = ring_.slotTailTime(ring::SlotType::Block);
        std::uint64_t tag = data.payload;
        kernel_.post(kernel_.now() + tail,
                     [this, tag]() { legDone(tag); });
        return;
      }
      default:
        panic("directory ring saw unexpected message kind %u",
              msg.kind);
    }
}

} // namespace ringsim::core
