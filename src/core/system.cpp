#include "system.hpp"

#include <vector>

#include "bus/split_bus.hpp"
#include "core/bus_snoop.hpp"
#include "core/processor.hpp"
#include "core/ring_directory.hpp"
#include "core/ring_snoop.hpp"
#include "ring/network.hpp"
#include "trace/generator.hpp"
#include "util/logging.hpp"

namespace ringsim::core {

namespace {

/** Everything common to the ring and bus run drivers. */
struct Harness
{
    sim::Kernel kernel;
    trace::AddressMap map;
    trace::TraceSet streams;
    coherence::FunctionalEngine engine;
    Metrics metrics;
    std::vector<std::unique_ptr<Processor>> processors;
    unsigned coldProcs;
    Tick measureStart = 0;
    Tick measureEnd = 0;
    bool stopped = false;

    Harness(const SystemConfig &common,
            const trace::WorkloadConfig &workload)
        : map(trace::makeAddressMap(workload)),
          streams(trace::makeTraceSet(workload, map)),
          engine(map, makeEngineOptions(common, workload)),
          metrics(workload.procs), coldProcs(workload.procs)
    {}

    static coherence::EngineOptions
    makeEngineOptions(const SystemConfig &common,
                      const trace::WorkloadConfig &workload)
    {
        coherence::EngineOptions opt;
        opt.geometry = common.cacheGeometry;
        opt.geometry.blockBytes = workload.blockBytes;
        opt.check = common.check;
        opt.monitor = common.monitor;
        opt.hooks.dropOneInvalidation = common.testDropOneInvalidation;
        return opt;
    }

    /** Build processors and wire warmup/done callbacks. */
    void
    buildProcessors(const SystemConfig &common,
                    const trace::WorkloadConfig &workload,
                    Protocol &protocol,
                    const std::function<void()> &on_all_warm)
    {
        auto warmup_refs = static_cast<Count>(
            common.warmupFrac *
            static_cast<double>(workload.dataRefsPerProc));
        for (NodeId p = 0; p < workload.procs; ++p) {
            processors.push_back(std::make_unique<Processor>(
                kernel, p, common.procCycle, *streams[p], protocol,
                metrics));
            Processor &proc = *processors.back();
            proc.setWarmupRefs(warmup_refs);
            proc.setStoreBufferDepth(common.storeBufferDepth);
            proc.onWarm([this, on_all_warm]() {
                if (--coldProcs == 0) {
                    metrics.reset();
                    engine.resetCensus();
                    measureStart = kernel.now();
                    on_all_warm();
                }
            });
            proc.onDone([this]() {
                if (!stopped) {
                    stopped = true;
                    measureEnd = kernel.now();
                    kernel.stop();
                }
            });
        }
        if (warmup_refs == 0)
            coldProcs = 0;
    }

    void
    startProcessors()
    {
        for (auto &proc : processors)
            proc->start(0);
    }

    /** Fill the protocol-independent parts of the result. */
    void
    fillResult(RunResult &result)
    {
        result.procUtilization = metrics.meanProcUtilization();
        result.missLatencyNs = ticksToNs(
            static_cast<Tick>(metrics.meanMissLatency()));
        result.missLatencyAllNs = ticksToNs(
            static_cast<Tick>(metrics.meanMissLatencyAll()));
        result.upgradeLatencyNs = ticksToNs(
            static_cast<Tick>(metrics.meanUpgradeLatency()));
        result.acquireWaitNs = metrics.acquireWait().mean() / tickNs;
        result.window = measureEnd - measureStart;
        result.localMisses = metrics.classCount(LatClass::LocalMiss);
        result.cleanMiss1 = metrics.classCount(LatClass::CleanMiss1);
        result.dirtyMiss1 = metrics.classCount(LatClass::DirtyMiss1);
        result.miss2 = metrics.classCount(LatClass::Miss2);
        result.upgrades = metrics.classCount(LatClass::Upgrade);
        result.census = engine.census();
    }
};

} // namespace

double
RunResult::cleanMiss1Frac() const
{
    Count remote = cleanMiss1 + dirtyMiss1 + miss2;
    return remote ? static_cast<double>(cleanMiss1) / remote : 0.0;
}

double
RunResult::dirtyMiss1Frac() const
{
    Count remote = cleanMiss1 + dirtyMiss1 + miss2;
    return remote ? static_cast<double>(dirtyMiss1) / remote : 0.0;
}

double
RunResult::miss2Frac() const
{
    Count remote = cleanMiss1 + dirtyMiss1 + miss2;
    return remote ? static_cast<double>(miss2) / remote : 0.0;
}

RunResult
runRingSystem(const RingSystemConfig &config,
              const trace::WorkloadConfig &workload, ProtocolKind kind)
{
    if (kind != ProtocolKind::RingSnoop &&
        kind != ProtocolKind::RingDirectory)
        fatal("runRingSystem needs a ring protocol");
    if (config.ring.nodes != workload.procs) {
        fatal("ring has %u nodes but the workload has %u processors",
              config.ring.nodes, workload.procs);
    }
    config.common.validate();

    Harness h(config.common, workload);
    ring::SlotRing ring_net(h.kernel, config.ring);
    ring_net.setMonitor(config.common.monitor);

    std::unique_ptr<RingProtocolBase> protocol;
    if (kind == ProtocolKind::RingSnoop) {
        protocol = std::make_unique<RingSnoopProtocol>(
            h.kernel, config.common, h.engine, ring_net, h.metrics);
    } else {
        protocol = std::make_unique<RingDirectoryProtocol>(
            h.kernel, config.common, h.engine, ring_net, h.metrics);
    }

    // Fault injection: the injector hooks the ring (where faults land)
    // and the protocol (which owns recovery). Absent when disabled so
    // the fault-free fast path is untouched.
    std::unique_ptr<fault::FaultInjector> injector;
    if (config.common.faults.enabled()) {
        config.common.faults.validate();
        injector =
            std::make_unique<fault::FaultInjector>(config.common.faults);
        ring_net.setFaultInjector(injector.get());
        protocol->setFaultRecovery(injector.get());
    }

    h.buildProcessors(config.common, workload, *protocol,
                      [&ring_net]() { ring_net.resetStats(); });
    ring_net.start(0);
    h.startProcessors();
    h.kernel.run();
    ring_net.stop();
    if (!h.stopped)
        h.measureEnd = h.kernel.now();

    RunResult result;
    result.protocol = kind;
    h.fillResult(result);
    result.networkUtilization = ring_net.totalOccupancy();
    if (injector) {
        const fault::FaultStats &fs = injector->stats();
        result.faultsInjected = injector->faultsInjected();
        result.retries = fs.retries.value();
        result.recovered = fs.recovered.value();
        result.fatalTxns = fs.fatals.value();
        result.nacks = fs.nacks.value();
        result.timeouts = fs.timeouts.value();
    }
    return result;
}

RunResult
runBusSystem(const BusSystemConfig &config,
             const trace::WorkloadConfig &workload)
{
    if (config.bus.nodes != workload.procs) {
        fatal("bus has %u nodes but the workload has %u processors",
              config.bus.nodes, workload.procs);
    }
    config.common.validate();

    Harness h(config.common, workload);
    bus::SplitBus bus_res(h.kernel, config.bus);
    BusSnoopProtocol protocol(h.kernel, config.common, h.engine,
                              bus_res, h.metrics);

    h.buildProcessors(config.common, workload, protocol,
                      [&bus_res]() { bus_res.resetStats(); });
    h.startProcessors();
    h.kernel.run();
    if (!h.stopped)
        h.measureEnd = h.kernel.now();

    RunResult result;
    result.protocol = ProtocolKind::BusSnoop;
    h.fillResult(result);
    result.networkUtilization = bus_res.utilization();
    return result;
}

} // namespace ringsim::core
