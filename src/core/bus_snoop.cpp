#include "bus_snoop.hpp"

#include <algorithm>

#include "cache/coherent_cache.hpp"
#include "util/logging.hpp"

namespace ringsim::core {

using coherence::AccessOutcome;

BusSnoopProtocol::BusSnoopProtocol(sim::Kernel &kernel,
                                   const SystemConfig &config,
                                   coherence::FunctionalEngine &engine,
                                   bus::SplitBus &bus_res,
                                   Metrics &metrics)
    : kernel_(kernel), config_(config), engine_(engine), bus_(bus_res),
      metrics_(metrics), bankFreeAt_(bus_res.config().nodes, 0)
{
    config_.validate();
}

bool
BusSnoopProtocol::tryAccess(NodeId p, const trace::TraceRecord &ref)
{
    cache::AccessResult res =
        engine_.cacheOf(p).classify(ref.addr, ref.isWrite());
    if (res != cache::AccessResult::Hit)
        return false;
    engine_.access(p, ref);
    return true;
}

Tick
BusSnoopProtocol::bankDone(NodeId node, Tick when, Tick service)
{
    Tick start = std::max(when, bankFreeAt_[node]);
    bankFreeAt_[node] = start + service;
    return start + service;
}

void
BusSnoopProtocol::finish(LatClass cls, Tick issued,
                         const std::function<void()> &on_complete)
{
    metrics_.addLatency(cls, kernel_.now() - issued);
    on_complete();
}

void
BusSnoopProtocol::startTransaction(NodeId p,
                                   const trace::TraceRecord &ref,
                                   std::function<void()> on_complete)
{
    AccessOutcome o;
    engine_.access(p, ref, &o);
    Tick issued = kernel_.now();

    if (o.type == AccessOutcome::Type::Hit) {
        // Re-classified as a hit at issue time (an in-flight store
        // already filled the block): no bus transaction.
        kernel_.post(issued, std::move(on_complete));
        return;
    }

    // Victim write-back: bus tenure (response-sized) plus the home
    // bank; the directory state was already updated at issue.
    if (o.victimValid && o.victimDirty) {
        if (o.victimHome == p) {
            bankDone(p, issued, config_.memoryLatency);
        } else {
            NodeId victim_home = o.victimHome;
            bus_.request(p, bus_.config().responseCycles(),
                         [this, victim_home](Tick, Tick end) {
                             bankDone(victim_home, end,
                                      config_.memoryLatency);
                         });
        }
    }

    if (o.type == AccessOutcome::Type::Upgrade) {
        // The request tenure broadcasts the invalidation; done when it
        // completes.
        bus_.request(p, bus_.config().requestCycles,
                     [this, issued, on_complete](Tick, Tick) {
                         finish(LatClass::Upgrade, issued, on_complete);
                     });
        return;
    }

    if (o.type != AccessOutcome::Type::Miss)
        panic("bus transaction for a non-miss reference");

    NodeId supplier = o.wasDirty ? o.owner : o.home;
    LatClass cls =
        o.wasDirty ? LatClass::DirtyMiss1 : LatClass::CleanMiss1;

    if (supplier == p) {
        // Every miss arbitrates for the bus (snoop broadcast), but
        // locally-homed clean data never crosses it: the request
        // tenure and the local bank overlap.
        cls = LatClass::LocalMiss;
        Tick bank = bankDone(p, issued, config_.memoryLatency);
        bus_.request(p, bus_.config().requestCycles,
                     [this, bank, issued, cls,
                      on_complete](Tick, Tick end) {
                         Tick done = std::max(bank, end);
                         kernel_.post(done,
                                      [this, issued, cls,
                                       on_complete]() {
                                          finish(cls, issued,
                                                 on_complete);
                                      });
                     });
        return;
    }

    // Remote data: request tenure, service at the supplier, response
    // tenure carrying the block.
    bool dirty = o.wasDirty;
    bus_.request(
        p, bus_.config().requestCycles,
        [this, supplier, dirty, issued, cls, on_complete](Tick,
                                                          Tick end) {
            Tick ready = dirty ? end + config_.cacheSupply
                               : bankDone(supplier, end,
                                          config_.memoryLatency);
            kernel_.post(ready, [this, supplier, issued, cls,
                                 on_complete]() {
                bus_.request(supplier, bus_.config().responseCycles(),
                             [this, issued, cls,
                              on_complete](Tick, Tick) {
                                 finish(cls, issued, on_complete);
                             });
            });
        });
}

} // namespace ringsim::core
