/**
 * @file
 * Timed-system configuration.
 *
 * Gathers the paper's fixed parameters (Section 4.1) and the knobs the
 * evaluation sweeps: processor cycle time (1–20 ns), ring clock
 * (250/500 MHz), bus clock (50/100 MHz). Service times the paper
 * leaves to its tech report (directory lookup, dirty-cache supply) are
 * explicit, documented assumptions here.
 */

#ifndef RINGSIM_CORE_CONFIG_HPP
#define RINGSIM_CORE_CONFIG_HPP

#include <string>
#include <vector>

#include "bus/split_bus.hpp"
#include "cache/geometry.hpp"
#include "cache/invariant_monitor.hpp"
#include "fault/fault.hpp"
#include "ring/config.hpp"
#include "util/units.hpp"

namespace ringsim::core {

/** Which timed coherence protocol a system runs. */
enum class ProtocolKind {
    RingSnoop,     //!< snooping on the slotted ring (Section 3.1)
    RingDirectory, //!< full-map directory on the ring (Section 3.2)
    BusSnoop,      //!< snooping split-transaction bus (Section 4.3)
};

/** Printable protocol name. */
const char *protocolName(ProtocolKind k);

/** Parameters common to every timed system. */
struct SystemConfig
{
    /** Processor cycle time in ticks (20000 ps = 50 MIPS). */
    Tick procCycle = 20000;

    /** Local memory bank access time (fixed at 140 ns, Section 4.1). */
    Tick memoryLatency = 140000;

    /**
     * Directory lookup / forward decision time at the home node.
     * Assumption (tech-report detail not in the paper).
     */
    Tick dirLookup = 40000;

    /**
     * Time for a dirty cache to supply a block, modeled like a memory
     * bank access. Assumption (tech-report detail not in the paper).
     */
    Tick cacheSupply = 140000;

    /** Data cache geometry (128 KB direct mapped, 16 B blocks). */
    cache::Geometry cacheGeometry;

    /**
     * Store-buffer depth for the latency-tolerance extension (paper
     * Section 6): 0 = processors block on all misses and
     * invalidations (the paper's baseline); K > 0 lets up to K write
     * misses / invalidations proceed in the background (weak
     * ordering). Read misses always block.
     */
    unsigned storeBufferDepth = 0;

    /** Fraction of each processor's data refs treated as warmup. */
    double warmupFrac = 0.3;

    /** Run the coherence invariant checker during the simulation. */
    bool check = false;

    /**
     * Continuous invariant monitoring: when non-null, the run drives
     * the checker (as if check were set) and routes every violation —
     * plus ring traversal audits and directory/cache agreement audits
     * — to this sink instead of panicking. Borrowed; must outlive the
     * run.
     */
    cache::InvariantMonitor *monitor = nullptr;

    /** Fault injection and recovery parameters (disabled by default). */
    fault::FaultConfig faults;

    /**
     * Test-only: drop one invalidation per sweep in the functional
     * engine (see coherence::EngineOptions::TestHooks). Used by the
     * monitor/model-checker cross-check tests; never set in
     * production configurations.
     */
    bool testDropOneInvalidation = false;

    /**
     * All misconfigurations, as human-readable messages. Each message
     * names the offending field and its value.
     */
    [[nodiscard]] std::vector<std::string> checkConfig() const;

    /** Validate; fatal() on misconfiguration. */
    void validate() const;
};

/** A ring system = common config + ring parameters. */
struct RingSystemConfig
{
    SystemConfig common;
    ring::RingConfig ring;

    /** Convenience: build the paper's default ring for @p procs. */
    static RingSystemConfig forProcs(unsigned procs,
                                     Tick ring_period = 2000);
};

/** A bus system = common config + bus parameters. */
struct BusSystemConfig
{
    SystemConfig common;
    bus::BusConfig bus;

    /** Convenience: build the paper's default bus for @p procs. */
    static BusSystemConfig forProcs(unsigned procs,
                                    Tick bus_period = 20000);
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_CONFIG_HPP
