/**
 * @file
 * Clang Thread Safety Analysis wrappers for the concurrent layers.
 *
 * The protocol engine is verified statically by ringsim_verify; this
 * header extends the same "hoist behavior into a checkable
 * representation" posture to the *threaded* code (service, runner,
 * connection registry). Every mutex-guarded member is annotated with
 * GUARDED_BY, every function that assumes a held lock carries
 * REQUIRES (and a ...Locked name), and the whole tree compiles under
 * `-Wthread-safety -Werror` on Clang — so an unguarded access or a
 * lock-order mistake is a *compile error*, not a latent race for TSan
 * to hopefully trip over.
 *
 * libstdc++'s std::mutex is not annotated, so the analysis needs thin
 * wrappers:
 *
 *   core::Mutex       an annotated CAPABILITY("mutex") over std::mutex
 *   core::MutexLock   annotated std::lock_guard equivalent
 *   core::UniqueLock  annotated std::unique_lock equivalent; its
 *                     native() handle is what condition variables
 *                     wait on (the wait re-acquires before returning,
 *                     so the capability is genuinely held at every
 *                     point the analysis can observe)
 *
 * Under GCC (which has no thread-safety analysis) every macro expands
 * to nothing and the wrappers compile to exactly the std types they
 * wrap — zero overhead, zero behavior change.
 *
 * Conventions (enforced by scripts/lint_rules.py):
 *  - every Mutex / std::mutex member needs at least one sibling
 *    GUARDED_BY naming it (rule: unguarded-mutex);
 *  - private helpers that assume the lock are named ...Locked and
 *    annotated REQUIRES(mutex_);
 *  - raw mutex_.lock()/unlock() juggling is banned outside this
 *    header (rule: manual-mutex-lock) — scoped guards only.
 */

#ifndef RINGSIM_CORE_THREAD_ANNOTATIONS_HPP
#define RINGSIM_CORE_THREAD_ANNOTATIONS_HPP

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RINGSIM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RINGSIM_THREAD_ANNOTATION
#define RINGSIM_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

#define CAPABILITY(x) RINGSIM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY RINGSIM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) RINGSIM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) RINGSIM_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
    RINGSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    RINGSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
    RINGSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) \
    RINGSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
    RINGSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
    RINGSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) \
    RINGSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) \
    RINGSIM_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
    RINGSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ringsim::core {

/**
 * Annotated std::mutex. native() exposes the wrapped mutex for
 * condition variables; everything else goes through the scoped
 * guards below.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mutex_.lock(); }
    void unlock() RELEASE() { mutex_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /** The wrapped mutex (condition_variable interop only). */
    std::mutex &native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/** Annotated std::lock_guard: locks for exactly one scope. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Annotated std::unique_lock. Holds the capability from construction
 * to destruction as far as the analysis is concerned; native() is the
 * std::unique_lock a condition variable waits on. A cv wait releases
 * and re-acquires the mutex *inside* the call, so every statement the
 * analysis sees really does hold the lock — the annotation stays
 * truthful even though the wait slept unlocked.
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mutex) ACQUIRE(mutex)
        : lock_(mutex.native())
    {
    }
    ~UniqueLock() RELEASE() = default;

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** The wrapped lock (condition_variable interop only). */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_THREAD_ANNOTATIONS_HPP
