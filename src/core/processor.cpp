#include "processor.hpp"

#include "util/logging.hpp"

namespace ringsim::core {

Processor::Processor(sim::Kernel &kernel, NodeId proc, Tick cycle,
                     trace::RefStream &stream, Protocol &protocol,
                     Metrics &metrics)
    : kernel_(kernel), proc_(proc), cycle_(cycle), stream_(stream),
      protocol_(protocol), metrics_(metrics)
{
    if (cycle_ == 0)
        panic("processor cycle time must be nonzero");
}

void
Processor::start(Tick start_at)
{
    kernel_.post(start_at, [this]() { execute(); });
}

void
Processor::execute()
{
    // Batch hits: consume references until one needs a transaction.
    Count batched = 0;
    trace::TraceRecord rec;
    for (;;) {
        if (!stream_.next(rec)) {
            metrics_.addBusy(proc_, batched * cycle_);
            done_ = true;
            if (onDone_)
                onDone_();
            return;
        }
        if (rec.isData()) {
            ++dataRefs_;
            if (!warmed_ && warmupRefs_ > 0 && dataRefs_ >= warmupRefs_) {
                warmed_ = true;
                // Account the batch so far, then let the system reset.
                metrics_.addBusy(proc_, batched * cycle_);
                batched = 0;
                if (onWarm_)
                    onWarm_();
            }
        }
        if (rec.op == trace::Op::Instr ||
            protocol_.tryAccess(proc_, rec)) {
            ++batched;
            continue;
        }
        if (rec.isWrite() && storeDepth_ > 0 &&
            outstandingStores_ < storeDepth_) {
            // Non-blocking store: retire into the buffer now, run its
            // transaction in the background at the point in time
            // where this reference executes.
            ++outstandingStores_;
            ++batched; // the store's own execute cycle
            issueStore(kernel_.now() + batched * cycle_, rec);
            continue;
        }
        break;
    }

    // `rec` needs a transaction after the batched hit run executes.
    metrics_.addBusy(proc_, batched * cycle_);
    pending_ = rec;
    if (batched == 0) {
        issue();
    } else {
        kernel_.postIn(batched * cycle_, [this]() { issue(); });
    }
}

void
Processor::issueStore(Tick when, const trace::TraceRecord &rec)
{
    kernel_.post(when, [this, rec]() {
        ++transactions_;
        protocol_.startTransaction(proc_, rec, [this]() {
            if (outstandingStores_ == 0)
                panic("store-buffer completion underflow");
            --outstandingStores_;
        });
    });
}

void
Processor::issue()
{
    ++transactions_;
    issueTime_ = kernel_.now();
    protocol_.startTransaction(proc_, pending_,
                               [this]() { complete(); });
}

void
Processor::complete()
{
    metrics_.addStall(proc_, kernel_.now() - issueTime_);
    // The missed reference itself still takes its execute cycle.
    metrics_.addBusy(proc_, cycle_);
    kernel_.postIn(cycle_, [this]() { execute(); });
}

} // namespace ringsim::core
