#include "ring_protocol.hpp"

#include <algorithm>

#include "cache/coherent_cache.hpp"
#include "util/logging.hpp"

namespace ringsim::core {

RingProtocolBase::RingProtocolBase(sim::Kernel &kernel,
                                   const SystemConfig &config,
                                   coherence::FunctionalEngine &engine,
                                   ring::SlotRing &ring_net,
                                   Metrics &metrics)
    : kernel_(kernel), config_(config), engine_(engine), ring_(ring_net),
      metrics_(metrics), nodes_(ring_net.config().nodes)
{
    config_.validate();
    queues_.resize(static_cast<size_t>(nodes_) * 3);
    queuedMsgs_.assign(nodes_, 0);
    bankFreeAt_.assign(nodes_, 0);
    for (NodeId n = 0; n < nodes_; ++n) {
        // One object for every node: the ring detects the uniform
        // registration and batch-dispatches whole rotations through
        // onVisits instead of one virtual call per visit.
        ring_.setClient(n, *this);
        // A visit on an empty slot with empty queues does nothing, so
        // the ring may skip those visits (and fast-forward when every
        // node is idle).
        ring_.enableIdleSkip(n);
    }
}

RingProtocolBase::~RingProtocolBase() = default;

void
RingProtocolBase::setFaultRecovery(fault::FaultInjector *injector)
{
    faultInjector_ = injector;
    recovery_ = injector != nullptr;
    if (!recovery_)
        return;
    const fault::FaultConfig &fc = injector->config();
    Tick rtt = ring_.config().roundTripTime();
    // Auto timeout: generous upper bound on a fault-free transaction
    // (a few traversals plus every service the legs can incur), so
    // spurious timeouts are rare even under queueing. A spurious
    // retry is safe regardless — the superseded attempt's events are
    // recognized as stale — it only wastes bandwidth.
    retryTimeout_ = fc.retryTimeout
                        ? fc.retryTimeout
                        : 4 * rtt + 4 * (config_.memoryLatency +
                                         config_.cacheSupply +
                                         config_.dirLookup);
    backoffBase_ = fc.backoffBase ? fc.backoffBase : rtt;
}

bool
RingProtocolBase::tryAccess(NodeId p, const trace::TraceRecord &ref)
{
    // Fast path: hits update state (touch + census) and cost nothing
    // beyond the processor cycle; anything else is left untouched for
    // startTransaction.
    cache::AccessResult res =
        engine_.cacheOf(p).classify(ref.addr, ref.isWrite());
    if (res != cache::AccessResult::Hit)
        return false;
    engine_.access(p, ref);
    return true;
}

void
RingProtocolBase::startTransaction(NodeId p,
                                   const trace::TraceRecord &ref,
                                   std::function<void()> on_complete)
{
    std::uint64_t id = nextTxnId_++;
    Txn &txn = txns_[id];
    txn.id = id;
    txn.requester = p;
    txn.issueTime = kernel_.now();
    txn.onComplete = std::move(on_complete);
    engine_.access(p, ref, &txn.outcome);
    if (txn.outcome.type == coherence::AccessOutcome::Type::Instr)
        panic("startTransaction called for an instruction fetch");
    if (txn.outcome.type == coherence::AccessOutcome::Type::Hit) {
        // With non-blocking stores a reference classified as a miss
        // at decode time can be a hit by issue time (an in-flight
        // store to the same block already applied its fill). Nothing
        // to do on the wire.
        auto cb = std::move(txn.onComplete);
        txns_.erase(id);
        kernel_.post(kernel_.now(), std::move(cb));
        return;
    }
    sendVictimWriteback(txn);
    launch(txn);
    armWatchdog(id);
}

void
RingProtocolBase::legDone(std::uint64_t tag)
{
    std::uint64_t id = tagTxn(tag);
    auto it = txns_.find(id);
    if (it == txns_.end() ||
        tagAttempt(tag) != tagAttempt(tagOf(it->second))) {
        if (recovery_) {
            faultInjector_->stats().staleEvents.inc();
            return;
        }
        panic("legDone for unknown transaction %llu",
              static_cast<unsigned long long>(id));
    }
    Txn &txn = it->second;
    if (txn.remainingLegs == 0)
        panic("legDone underflow");
    if (--txn.remainingLegs > 0)
        return;
    completeTxn(txn);
}

void
RingProtocolBase::completeTxn(Txn &txn, bool succeeded)
{
    if (recovery_ && succeeded && txn.attempt > 1)
        faultInjector_->stats().recovered.inc();
    metrics_.addLatency(txn.cls, kernel_.now() - txn.issueTime);
    auto cb = std::move(txn.onComplete);
    txns_.erase(txn.id);
    cb();
}

RingProtocolBase::Txn *
RingProtocolBase::findTxn(std::uint64_t id)
{
    auto it = txns_.find(id);
    return it == txns_.end() ? nullptr : &it->second;
}

RingProtocolBase::Txn *
RingProtocolBase::activeTxn(std::uint64_t tag)
{
    Txn *txn = findTxn(tagTxn(tag));
    if (!txn || tagAttempt(tag) != tagAttempt(tagOf(*txn)))
        return nullptr;
    return txn;
}

RingProtocolBase::Txn *
RingProtocolBase::requireTxn(std::uint64_t tag, const char *what)
{
    Txn *txn = findTxn(tagTxn(tag));
    if (txn && tagAttempt(tag) == tagAttempt(tagOf(*txn)))
        return txn;
    if (!recovery_)
        panic("%s", what);
    faultInjector_->stats().staleEvents.inc();
    return nullptr;
}

void
RingProtocolBase::armWatchdog(std::uint64_t id)
{
    if (!recovery_)
        return;
    Txn *txn = findTxn(id);
    if (!txn)
        return;
    unsigned attempt = txn->attempt;
    // Exponential: each attempt waits twice as long before giving up
    // on the wire (capped to keep the shift sane).
    Tick delay = retryTimeout_ << std::min(attempt - 1, 8u);
    kernel_.post(kernel_.now() + delay, [this, id, attempt]() {
        onWatchdog(id, attempt);
    });
}

void
RingProtocolBase::onWatchdog(std::uint64_t id, unsigned attempt)
{
    Txn *txn = findTxn(id);
    if (!txn || txn->attempt != attempt)
        return; // completed, or a NACK already triggered the retry
    faultInjector_->stats().timeouts.inc();
    retryTxn(*txn);
}

void
RingProtocolBase::onNack(std::uint64_t tag)
{
    Txn *txn = activeTxn(tag);
    if (!txn) {
        faultInjector_->stats().staleEvents.inc();
        return;
    }
    retryTxn(*txn);
}

void
RingProtocolBase::retryTxn(Txn &txn)
{
    const fault::FaultConfig &fc = faultInjector_->config();
    if (txn.attempt > fc.maxRetries) {
        // Retries exhausted: graceful degradation. The functional
        // state was applied at issue, so the access itself is not
        // lost — record the fault and let the processor continue
        // rather than hanging the system.
        faultInjector_->stats().fatals.inc();
        completeTxn(txn, /*succeeded=*/false);
        return;
    }
    faultInjector_->stats().retries.inc();
    unsigned next = txn.attempt + 1;
    // Bump the attempt immediately: everything the old attempt left
    // on the wire is stale from this point on.
    txn.attempt = next;
    Tick backoff = backoffBase_ << std::min(next - 2, 8u);
    std::uint64_t id = txn.id;
    kernel_.post(kernel_.now() + backoff, [this, id, next]() {
        relaunch(id, next);
    });
}

void
RingProtocolBase::relaunch(std::uint64_t id, unsigned attempt)
{
    Txn *txn = findTxn(id);
    if (!txn || txn->attempt != attempt)
        return; // superseded again, or declared fatal meanwhile
    txn->remainingLegs = 1;
    txn->probeReturnLeg = false;
    txn->dataReadyAt = 0;
    launch(*txn);
    armWatchdog(id);
}

FlatQueue<RingProtocolBase::QueuedMsg> &
RingProtocolBase::queueFor(NodeId n, ring::SlotType t)
{
    return queues_[static_cast<size_t>(n) * 3 +
                   static_cast<unsigned>(t)];
}

void
RingProtocolBase::enqueue(NodeId n, const ring::RingMessage &msg,
                          bool is_block)
{
    ring::SlotType t = is_block ? ring::SlotType::Block
                                : ring_.probeTypeFor(msg.addr);
    queueFor(n, t).push_back(QueuedMsg{msg, kernel_.now()});
    if (++queuedMsgs_[n] == 1)
        ring_.notifyPending(n);
}

Tick
RingProtocolBase::bankDone(NodeId node, Tick when, Tick service)
{
    Tick start = std::max(when, bankFreeAt_[node]);
    bankFreeAt_[node] = start + service;
    return start + service;
}

void
RingProtocolBase::sendVictimWriteback(const Txn &txn)
{
    const coherence::AccessOutcome &o = txn.outcome;
    if (!o.victimValid || !o.victimDirty)
        return;
    // The directory state was already updated by the functional
    // engine (write-back buffer with immediate home update); the
    // block message itself is traffic that occupies a block slot and
    // the home's memory bank.
    if (o.victimHome == txn.requester) {
        bankDone(txn.requester, kernel_.now(), config_.memoryLatency);
        return;
    }
    ring::RingMessage msg;
    msg.kind = MsgBlockTraffic;
    msg.src = txn.requester;
    msg.dst = o.victimHome;
    msg.addr = o.victimBlock;
    msg.payload = 0;
    enqueue(txn.requester, msg, /*is_block=*/true);
}

void
RingProtocolBase::discardCorrupt(NodeId n, ring::SlotHandle &slot)
{
    // The payload CRC failed at this interface; the ECC-protected
    // header still identifies the sender, so anything that belongs to
    // a waiting transaction is NACKed back for a fast retry. Traffic
    // messages (write-backs) and NACKs themselves have nobody
    // waiting; their loss is absorbed (memory refresh is lost, the
    // NACKed sender falls back to its timeout).
    ring::RingMessage bad = slot.remove();
    if (!recovery_)
        return;
    if (bad.kind == MsgBlockTraffic) {
        faultInjector_->stats().lostWritebacks.inc();
        return;
    }
    if (bad.kind == MsgNack)
        return;
    faultInjector_->stats().nacks.inc();
    ring::RingMessage nack;
    nack.kind = MsgNack;
    nack.src = n;
    nack.dst = bad.src;
    nack.addr = bad.addr;
    nack.payload = bad.payload;
    enqueue(n, nack, /*is_block=*/false);
}

void
RingProtocolBase::onSlot(ring::SlotHandle &slot)
{
    visitSlot(slot.node(), slot);
}

void
RingProtocolBase::onVisits(ring::SlotRing &ring_net,
                           const ring::SlotVisit *begin,
                           const ring::SlotVisit *end)
{
    for (const ring::SlotVisit *v = begin; v != end; ++v) {
        ring::SlotHandle handle = ring_net.visitHandle(*v);
        visitSlot(v->node, handle);
    }
}

void
RingProtocolBase::visitSlot(NodeId n, ring::SlotHandle &slot)
{
    if (slot.occupied() && slot.corrupted()) {
        discardCorrupt(n, slot);
    } else if (slot.occupied()) {
        const ring::RingMessage &msg = slot.message();
        if (msg.kind == MsgBlockTraffic) {
            if (msg.dst == n) {
                ring::RingMessage taken = slot.remove();
                // Arriving write-back / refresh data occupies the
                // destination's memory bank.
                bankDone(n, kernel_.now() + ring_.slotTailTime(
                                 ring::SlotType::Block),
                         config_.memoryLatency);
                (void)taken;
            }
        } else if (msg.kind == MsgNack) {
            if (msg.dst == n) {
                ring::RingMessage nack = slot.remove();
                onNack(nack.payload);
            }
        } else {
            handleMessage(n, slot);
        }
    }
    if (!slot.occupied())
        tryInsert(n, slot);
}

void
RingProtocolBase::tryInsert(NodeId n, ring::SlotHandle &slot)
{
    auto &q = queueFor(n, slot.type());
    if (q.empty())
        return;
    if (!slot.canInsert(q.front().msg.addr))
        return;
    metrics_.addAcquireWait(kernel_.now() - q.front().enqueued);
    slot.insert(q.front().msg);
    q.pop_front();
    if (--queuedMsgs_[n] == 0)
        ring_.clearPending(n);
}

} // namespace ringsim::core
