#include "ring_protocol.hpp"

#include <algorithm>

#include "cache/coherent_cache.hpp"
#include "util/logging.hpp"

namespace ringsim::core {

RingProtocolBase::RingProtocolBase(sim::Kernel &kernel,
                                   const SystemConfig &config,
                                   coherence::FunctionalEngine &engine,
                                   ring::SlotRing &ring_net,
                                   Metrics &metrics)
    : kernel_(kernel), config_(config), engine_(engine), ring_(ring_net),
      metrics_(metrics), nodes_(ring_net.config().nodes)
{
    config_.validate();
    queues_.resize(static_cast<size_t>(nodes_) * 3);
    bankFreeAt_.assign(nodes_, 0);
    clients_.reserve(nodes_);
    for (NodeId n = 0; n < nodes_; ++n) {
        clients_.push_back(std::make_unique<NodeClient>(*this, n));
        ring_.setClient(n, *clients_.back());
    }
}

RingProtocolBase::~RingProtocolBase() = default;

bool
RingProtocolBase::tryAccess(NodeId p, const trace::TraceRecord &ref)
{
    // Fast path: hits update state (touch + census) and cost nothing
    // beyond the processor cycle; anything else is left untouched for
    // startTransaction.
    cache::AccessResult res =
        engine_.cacheOf(p).classify(ref.addr, ref.isWrite());
    if (res != cache::AccessResult::Hit)
        return false;
    engine_.access(p, ref);
    return true;
}

void
RingProtocolBase::startTransaction(NodeId p,
                                   const trace::TraceRecord &ref,
                                   std::function<void()> on_complete)
{
    std::uint64_t id = nextTxnId_++;
    Txn &txn = txns_[id];
    txn.id = id;
    txn.requester = p;
    txn.issueTime = kernel_.now();
    txn.onComplete = std::move(on_complete);
    engine_.access(p, ref, &txn.outcome);
    if (txn.outcome.type == coherence::AccessOutcome::Type::Instr)
        panic("startTransaction called for an instruction fetch");
    if (txn.outcome.type == coherence::AccessOutcome::Type::Hit) {
        // With non-blocking stores a reference classified as a miss
        // at decode time can be a hit by issue time (an in-flight
        // store to the same block already applied its fill). Nothing
        // to do on the wire.
        auto cb = std::move(txn.onComplete);
        txns_.erase(id);
        kernel_.post(kernel_.now(), std::move(cb));
        return;
    }
    sendVictimWriteback(txn);
    launch(txn);
}

void
RingProtocolBase::legDone(std::uint64_t id)
{
    auto it = txns_.find(id);
    if (it == txns_.end())
        panic("legDone for unknown transaction %llu",
              static_cast<unsigned long long>(id));
    Txn &txn = it->second;
    if (txn.remainingLegs == 0)
        panic("legDone underflow");
    if (--txn.remainingLegs > 0)
        return;
    metrics_.addLatency(txn.cls, kernel_.now() - txn.issueTime);
    auto cb = std::move(txn.onComplete);
    txns_.erase(it);
    cb();
}

RingProtocolBase::Txn *
RingProtocolBase::findTxn(std::uint64_t id)
{
    auto it = txns_.find(id);
    return it == txns_.end() ? nullptr : &it->second;
}

std::deque<RingProtocolBase::QueuedMsg> &
RingProtocolBase::queueFor(NodeId n, ring::SlotType t)
{
    return queues_[static_cast<size_t>(n) * 3 +
                   static_cast<unsigned>(t)];
}

void
RingProtocolBase::enqueue(NodeId n, const ring::RingMessage &msg,
                          bool is_block)
{
    ring::SlotType t = is_block ? ring::SlotType::Block
                                : ring_.probeTypeFor(msg.addr);
    queueFor(n, t).push_back(QueuedMsg{msg, kernel_.now()});
}

Tick
RingProtocolBase::bankDone(NodeId node, Tick when, Tick service)
{
    Tick start = std::max(when, bankFreeAt_[node]);
    bankFreeAt_[node] = start + service;
    return start + service;
}

void
RingProtocolBase::sendVictimWriteback(const Txn &txn)
{
    const coherence::AccessOutcome &o = txn.outcome;
    if (!o.victimValid || !o.victimDirty)
        return;
    // The directory state was already updated by the functional
    // engine (write-back buffer with immediate home update); the
    // block message itself is traffic that occupies a block slot and
    // the home's memory bank.
    if (o.victimHome == txn.requester) {
        bankDone(txn.requester, kernel_.now(), config_.memoryLatency);
        return;
    }
    ring::RingMessage msg;
    msg.kind = MsgBlockTraffic;
    msg.src = txn.requester;
    msg.dst = o.victimHome;
    msg.addr = o.victimBlock;
    msg.payload = 0;
    enqueue(txn.requester, msg, /*is_block=*/true);
}

void
RingProtocolBase::onSlot(NodeId n, ring::SlotHandle &slot)
{
    if (slot.occupied()) {
        const ring::RingMessage &msg = slot.message();
        if (msg.kind == MsgBlockTraffic) {
            if (msg.dst == n) {
                ring::RingMessage taken = slot.remove();
                // Arriving write-back / refresh data occupies the
                // destination's memory bank.
                bankDone(n, kernel_.now() + ring_.slotTailTime(
                                 ring::SlotType::Block),
                         config_.memoryLatency);
                (void)taken;
            }
        } else {
            handleMessage(n, slot);
        }
    }
    if (!slot.occupied())
        tryInsert(n, slot);
}

void
RingProtocolBase::tryInsert(NodeId n, ring::SlotHandle &slot)
{
    auto &q = queueFor(n, slot.type());
    if (q.empty())
        return;
    if (!slot.canInsert(q.front().msg.addr))
        return;
    metrics_.addAcquireWait(kernel_.now() - q.front().enqueued);
    slot.insert(q.front().msg);
    q.pop_front();
}

} // namespace ringsim::core
