/**
 * @file
 * Interface between the trace-driven processors and a timed protocol.
 *
 * ringsim's timed simulators apply cache/directory state transitions
 * atomically when a transaction *issues* (via the shared functional
 * engine) and then model the transaction's timing — message legs on
 * the ring or bus, slot/arbiter waits, memory-bank queueing. This is
 * the standard trace-driven decomposition: the reference stream fixes
 * the state sequence, the timing layer fixes when each step happens,
 * and the two cannot race (DESIGN.md §6 documents the approximation).
 */

#ifndef RINGSIM_CORE_PROTOCOL_HPP
#define RINGSIM_CORE_PROTOCOL_HPP

#include <functional>

#include "trace/record.hpp"
#include "util/units.hpp"

namespace ringsim::core {

/** Timed-protocol interface used by core::Processor. */
class Protocol
{
  public:
    virtual ~Protocol() = default;

    /**
     * Try the fast path: returns true when the reference hits (state
     * already updated) and the processor may keep executing; false
     * when a transaction is needed (no state touched yet).
     */
    [[nodiscard]] virtual bool
    tryAccess(NodeId p, const trace::TraceRecord &ref) = 0;

    /**
     * Start the transaction for a reference that missed. State is
     * applied now; @p on_complete fires when the transaction's last
     * message leg finishes and the processor may resume.
     */
    virtual void startTransaction(NodeId p,
                                  const trace::TraceRecord &ref,
                                  std::function<void()> on_complete) = 0;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_PROTOCOL_HPP
