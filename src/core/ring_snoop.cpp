#include "ring_snoop.hpp"

#include "util/logging.hpp"

namespace ringsim::core {

using coherence::AccessOutcome;

NodeId
RingSnoopProtocol::supplierOf(const Txn &txn) const
{
    return txn.outcome.wasDirty ? txn.outcome.owner : txn.outcome.home;
}

void
RingSnoopProtocol::launch(Txn &txn)
{
    const AccessOutcome &o = txn.outcome;
    std::uint64_t tag = tagOf(txn);

    if (o.type == AccessOutcome::Type::Upgrade) {
        // Invalidation: one broadcast probe; done when it returns.
        txn.cls = LatClass::Upgrade;
        txn.remainingLegs = 1;
        txn.probeReturnLeg = true;
        ring::RingMessage probe;
        probe.kind = MsgSnoopProbe;
        probe.src = txn.requester;
        probe.dst = ring::broadcastNode;
        probe.addr = o.block;
        probe.payload = tag;
        enqueue(txn.requester, probe, /*is_block=*/false);
        return;
    }

    // Every miss broadcasts a probe; the dirty bit only decides who
    // responds (Section 3.1).
    ring::RingMessage probe;
    probe.kind = MsgSnoopProbe;
    probe.src = txn.requester;
    probe.dst = ring::broadcastNode;
    probe.addr = o.block;
    probe.payload = tag;

    bool local_data = !o.wasDirty && o.home == txn.requester;
    if (local_data) {
        // The local bank answers, but the transaction commits when
        // the probe returns: both legs must finish.
        txn.cls = LatClass::LocalMiss;
        txn.remainingLegs = 2;
        txn.probeReturnLeg = true;
        Tick done = bankDone(txn.requester, kernel_.now(),
                             config_.memoryLatency);
        kernel_.post(done, [this, tag]() { legDone(tag); });
    } else {
        // Remote data: completion is the block's arrival.
        txn.cls = o.wasDirty ? LatClass::DirtyMiss1
                             : LatClass::CleanMiss1;
        txn.remainingLegs = 1;
        txn.probeReturnLeg = false;
    }
    enqueue(txn.requester, probe, /*is_block=*/false);
}

void
RingSnoopProtocol::supply(Txn &txn, NodeId supplier)
{
    // Home memory access goes through the FCFS bank; a dirty cache
    // supplies after a fixed cache-array access.
    Tick ready;
    if (txn.outcome.wasDirty) {
        ready = kernel_.now() + config_.cacheSupply;
    } else {
        ready = bankDone(supplier, kernel_.now(),
                         config_.memoryLatency);
    }
    std::uint64_t tag = tagOf(txn);
    NodeId requester = txn.requester;
    Addr block = txn.outcome.block;
    kernel_.post(ready, [this, tag, supplier, requester, block]() {
        if (!requireTxn(tag,
                        "snoop supplier fired for finished transaction"))
            return;
        ring::RingMessage data;
        data.kind = MsgBlockData;
        data.src = supplier;
        data.dst = requester;
        data.addr = block;
        data.payload = tag;
        enqueue(supplier, data, /*is_block=*/true);
    });
}

void
RingSnoopProtocol::handleMessage(NodeId n, ring::SlotHandle &slot)
{
    const ring::RingMessage &msg = slot.message();
    switch (msg.kind) {
      case MsgSnoopProbe: {
        if (msg.src == n) {
            // Our own probe came back: remove it; one traversal total.
            ring::RingMessage probe = slot.remove();
            Txn *txn = activeTxn(probe.payload);
            if (txn && txn->probeReturnLeg)
                legDone(probe.payload);
            return;
        }
        // Snoop: the owner answers a *data* probe as it passes
        // (invalidation probes need no reply beyond their return).
        Txn *txn = activeTxn(msg.payload);
        if (txn &&
            txn->outcome.type == AccessOutcome::Type::Miss &&
            supplierOf(*txn) == n &&
            supplierOf(*txn) != txn->requester) {
            supply(*txn, n);
        }
        return;
      }
      case MsgBlockData: {
        if (msg.dst != n)
            return;
        ring::RingMessage data = slot.remove();
        Tick tail = ring_.slotTailTime(ring::SlotType::Block);
        std::uint64_t tag = data.payload;
        kernel_.post(kernel_.now() + tail,
                     [this, tag]() { legDone(tag); });
        return;
      }
      default:
        panic("snooping ring saw unexpected message kind %u", msg.kind);
    }
}

} // namespace ringsim::core
