#include "ring_snoop.hpp"

#include "util/logging.hpp"

namespace ringsim::core {

using coherence::AccessOutcome;

ptable::SnoopPlan
RingSnoopProtocol::planOf(const Txn &txn)
{
    return ptable::snoopPlan(ptable::viewOf(txn.outcome,
                                            txn.requester));
}

NodeId
RingSnoopProtocol::supplierOf(const Txn &txn) const
{
    return planOf(txn).supplier == ptable::SnoopSupplier::OwnerCache
               ? txn.outcome.owner
               : txn.outcome.home;
}

void
RingSnoopProtocol::launch(Txn &txn)
{
    const ptable::SnoopPlan plan = planOf(txn);
    std::uint64_t tag = tagOf(txn);

    txn.cls = plan.cls;
    txn.remainingLegs = plan.legs;
    txn.probeReturnLeg = plan.probeReturnLeg;

    if (plan.localBankLeg) {
        // The local bank answers, but the transaction commits when
        // the probe returns: both legs must finish.
        Tick done = bankDone(txn.requester, kernel_.now(),
                             config_.memoryLatency);
        kernel_.post(done, [this, tag]() { legDone(tag); });
    }

    // Every transaction broadcasts a probe — misses and invalidations
    // alike; the dirty bit only decides who responds (Section 3.1).
    ring::RingMessage probe;
    probe.kind = MsgSnoopProbe;
    probe.src = txn.requester;
    probe.dst = ring::broadcastNode;
    probe.addr = txn.outcome.block;
    probe.payload = tag;
    enqueue(txn.requester, probe, /*is_block=*/false);
}

void
RingSnoopProtocol::supply(Txn &txn, NodeId supplier)
{
    // Home memory access goes through the FCFS bank; a dirty cache
    // supplies after a fixed cache-array access.
    Tick ready;
    if (planOf(txn).supplier == ptable::SnoopSupplier::OwnerCache) {
        ready = kernel_.now() + config_.cacheSupply;
    } else {
        ready = bankDone(supplier, kernel_.now(),
                         config_.memoryLatency);
    }
    std::uint64_t tag = tagOf(txn);
    NodeId requester = txn.requester;
    Addr block = txn.outcome.block;
    kernel_.post(ready, [this, tag, supplier, requester, block]() {
        if (!requireTxn(tag,
                        "snoop supplier fired for finished transaction"))
            return;
        ring::RingMessage data;
        data.kind = MsgBlockData;
        data.src = supplier;
        data.dst = requester;
        data.addr = block;
        data.payload = tag;
        enqueue(supplier, data, /*is_block=*/true);
    });
}

void
RingSnoopProtocol::handleMessage(NodeId n, ring::SlotHandle &slot)
{
    const ring::RingMessage &msg = slot.message();
    switch (msg.kind) {
      case MsgSnoopProbe: {
        if (msg.src == n) {
            // Our own probe came back: remove it; one traversal total.
            ring::RingMessage probe = slot.remove();
            Txn *txn = activeTxn(probe.payload);
            if (txn && txn->probeReturnLeg)
                legDone(probe.payload);
            return;
        }
        // Snoop: the planned supplier answers a *data* probe as it
        // passes (invalidation probes need no reply beyond their
        // return).
        Txn *txn = activeTxn(msg.payload);
        if (txn && planOf(*txn).remoteData && supplierOf(*txn) == n)
            supply(*txn, n);
        return;
      }
      case MsgBlockData: {
        if (msg.dst != n)
            return;
        ring::RingMessage data = slot.remove();
        Tick tail = ring_.slotTailTime(ring::SlotType::Block);
        std::uint64_t tag = data.payload;
        kernel_.post(kernel_.now() + tail,
                     [this, tag]() { legDone(tag); });
        return;
      }
      default:
        panic("snooping ring saw unexpected message kind %u", msg.kind);
    }
}

} // namespace ringsim::core
