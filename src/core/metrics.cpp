#include "metrics.hpp"

#include "util/logging.hpp"

namespace ringsim::core {

const char *
latClassName(LatClass c)
{
    switch (c) {
      case LatClass::LocalMiss:
        return "local-miss";
      case LatClass::CleanMiss1:
        return "1-cycle-clean";
      case LatClass::DirtyMiss1:
        return "1-cycle-dirty";
      case LatClass::Miss2:
        return "2-cycle";
      case LatClass::Upgrade:
        return "upgrade";
    }
    return "?";
}

Metrics::Metrics(unsigned procs)
    : busy_(procs, 0), stall_(procs, 0)
{
    if (procs == 0)
        fatal("Metrics needs at least one processor");
}

void
Metrics::addLatency(LatClass cls, Tick latency)
{
    lat_[static_cast<unsigned>(cls)].add(static_cast<double>(latency));
}

void
Metrics::reset()
{
    std::fill(busy_.begin(), busy_.end(), 0);
    std::fill(stall_.begin(), stall_.end(), 0);
    for (auto &sampler : lat_)
        sampler.reset();
    acquireWait_.reset();
}

double
Metrics::procUtilization(NodeId p) const
{
    Tick total = busy_[p] + stall_[p];
    if (total == 0)
        return 0.0;
    return static_cast<double>(busy_[p]) / static_cast<double>(total);
}

double
Metrics::meanProcUtilization() const
{
    double sum = 0.0;
    for (unsigned p = 0; p < procs(); ++p)
        sum += procUtilization(p);
    return sum / procs();
}

const stats::Sampler &
Metrics::latency(LatClass cls) const
{
    return lat_[static_cast<unsigned>(cls)];
}

double
Metrics::meanMissLatency() const
{
    double weighted = 0.0;
    Count n = 0;
    for (LatClass cls : {LatClass::CleanMiss1, LatClass::DirtyMiss1,
                         LatClass::Miss2}) {
        const stats::Sampler &s = latency(cls);
        weighted += s.sum();
        n += s.count();
    }
    return n ? weighted / static_cast<double>(n) : 0.0;
}

double
Metrics::meanMissLatencyAll() const
{
    double weighted = 0.0;
    Count n = 0;
    for (LatClass cls : {LatClass::LocalMiss, LatClass::CleanMiss1,
                         LatClass::DirtyMiss1, LatClass::Miss2}) {
        const stats::Sampler &s = latency(cls);
        weighted += s.sum();
        n += s.count();
    }
    return n ? weighted / static_cast<double>(n) : 0.0;
}

} // namespace ringsim::core
