/**
 * @file
 * Timed snooping protocol for the slotted ring (paper Section 3.1).
 *
 * Misses and invalidations broadcast a probe that circulates the whole
 * ring and is removed by its requester — no transaction ever traverses
 * the ring more than once, so the interconnect behaves as a UMA
 * device. The owner (home node when the memory dirty bit is clear,
 * else the dirty cache) services the request as the probe passes it
 * and returns the block in a block slot. Misses whose home is the
 * requester and whose dirty bit is clear never touch the ring.
 */

#ifndef RINGSIM_CORE_RING_SNOOP_HPP
#define RINGSIM_CORE_RING_SNOOP_HPP

#include "core/protocol_table.hpp"
#include "core/ring_protocol.hpp"

namespace ringsim::core {

/** The snooping controller set (one logical controller per node). */
class RingSnoopProtocol : public RingProtocolBase
{
  public:
    using RingProtocolBase::RingProtocolBase;

  protected:
    void launch(Txn &txn) override;

    /**
     * Only reached for occupied slots: the base class opted every
     * node into the ring's idle skipping, so empty slots are offered
     * solely to nodes whose queues are non-empty (via tryInsert), and
     * never get here.
     */
    void handleMessage(NodeId n, ring::SlotHandle &slot) override;

  private:
    /** This transaction's row of the shared snoop transition table. */
    static ptable::SnoopPlan planOf(const Txn &txn);

    /** The node that must answer this transaction's probe. */
    NodeId supplierOf(const Txn &txn) const;

    /** Schedule the supplier's service and data reply. */
    void supply(Txn &txn, NodeId supplier);
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_RING_SNOOP_HPP
