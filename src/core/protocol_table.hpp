/**
 * @file
 * Shared guarded-action protocol tables.
 *
 * The snoop and directory controllers (ring_snoop.*, ring_directory.*)
 * and the static model checker (src/verify/) must agree on what each
 * transaction does: which latency class it lands in, how many
 * completion legs it has, who supplies the data, and which wire
 * actions it launches. This header declares those transitions ONCE, as
 * pure functions of a protocol-relevant request view:
 *
 *  - snoopPlan()  — the snooping transaction script (Section 3.1);
 *  - dirPlan()    — the full-map directory script (Section 3.2);
 *  - applyAccess()/applyEvict() — the functional (state) layer's
 *    guarded actions on an abstract per-block view, mirroring
 *    coherence::FunctionalEngine (tests/verify cross-checks the two
 *    exhaustively, so drift fails the build).
 *
 * The production controllers consume the plans directly; the model
 * checker enumerates them over every reachable state and placement.
 * Because both sides read the same table, the checker audits the
 * production protocol rather than a parallel specification.
 *
 * Mutation is a test-only fault seed: each value perturbs exactly one
 * guarded action so tests can prove the checker (and the runtime
 * InvariantMonitor) actually catch a broken transition. Production
 * code always passes Mutation::None.
 */

#ifndef RINGSIM_CORE_PROTOCOL_TABLE_HPP
#define RINGSIM_CORE_PROTOCOL_TABLE_HPP

#include <array>
#include <cstdint>
#include <string>

#include "cache/coherent_cache.hpp"
#include "coherence/engine.hpp"
#include "core/metrics.hpp"
#include "util/units.hpp"

namespace ringsim::core::ptable {

/** Deliberately broken transitions, for checker self-tests. */
enum class Mutation : unsigned {
    None = 0,
    DropInvalidation,    //!< a write leaves one stale sharer behind
    KeepDirtyOnRead,     //!< a read of a dirty block leaves dirty set
    SnoopExtraTraversal, //!< the snoop probe circulates twice
    SnoopMemorySupplier, //!< a dirty snoop miss answered by home memory
    DirSkipForward,      //!< a dirty directory miss served as if clean
    DirSkipMulticast,    //!< a write to a shared block skips the
                         //!< invalidation multicast
    AcceptStaleAttempt,  //!< a superseded attempt's leg completes the
                         //!< transaction (tag guard disabled)
};

/** Printable mutation name (CLI spelling). */
const char *mutationName(Mutation m);

/** Parse a CLI mutation name; false when unknown. */
[[nodiscard]] bool mutationFromName(const std::string &name,
                                    Mutation *out);

/** Every mutation, for CLI listings and exhaustive tests. */
constexpr std::array<Mutation, 7> allMutations = {
    Mutation::DropInvalidation,    Mutation::KeepDirtyOnRead,
    Mutation::SnoopExtraTraversal, Mutation::SnoopMemorySupplier,
    Mutation::DirSkipForward,      Mutation::DirSkipMulticast,
    Mutation::AcceptStaleAttempt,
};

/** Protocol-relevant view of one issued request. */
struct RequestView
{
    bool isUpgrade = false;   //!< write to an RS copy (no data fetch)
    bool isWrite = false;     //!< the access is a store
    bool homeIsLocal = false; //!< the block's home is the requester
    bool wasDirty = false;    //!< a remote cache owned the block
    bool mapSharers = false;  //!< presence bits beyond the requester
};

/** The view the controllers derive from a functional outcome. */
RequestView viewOf(const coherence::AccessOutcome &outcome,
                   NodeId requester);

/** Who answers a snoop data probe (Section 3.1). */
enum class SnoopSupplier : std::uint8_t {
    HomeMemory, //!< dirty bit clear: the home's memory bank
    OwnerCache, //!< dirty bit set: the owning cache
};

/**
 * Declarative script of one snooping transaction. Guards:
 * isUpgrade selects the invalidation row; homeIsLocal && !wasDirty
 * selects the local-miss row; everything else is a remote miss.
 */
struct SnoopPlan
{
    LatClass cls = LatClass::LocalMiss;
    unsigned legs = 1;           //!< completion legs to wait for
    bool probeReturnLeg = false; //!< the probe's own return is a leg
    bool localBankLeg = false;   //!< the requester's bank is a leg
    bool remoteData = false;     //!< a remote block message is the leg
    SnoopSupplier supplier = SnoopSupplier::HomeMemory;
    unsigned probeLoops = 1;     //!< ring traversals the probe makes
};

/** The snooping transition table row for @p rv. */
SnoopPlan snoopPlan(const RequestView &rv,
                    Mutation m = Mutation::None);

/**
 * Declarative script of one directory transaction. Wire actions in
 * order: optional request leg to a remote home, then either a forward
 * to the dirty owner (who answers the requester), or an optional
 * full-ring multicast followed by the home's response.
 */
struct DirPlan
{
    LatClass cls = LatClass::LocalMiss;
    bool requestLeg = false;     //!< point-to-point request to the home
    bool forwardToOwner = false; //!< home forwards to the dirty owner
    bool multicast = false;      //!< invalidation gates the response
    bool respondData = false;    //!< response carries the block
    bool homeBankFetch = false;  //!< home memory fetch feeds the reply
    unsigned traversals = 0;     //!< exact traversals, this placement
};

/** True when @p rv requires a full-ring invalidation multicast. */
bool dirNeedsMulticast(const RequestView &rv);

/** The directory transition table row for @p rv at this placement. */
DirPlan dirPlan(unsigned nodes, NodeId requester, NodeId home,
                NodeId owner, const RequestView &rv,
                Mutation m = Mutation::None);

/**
 * Functional layer: abstract global state of ONE block across up to
 * @ref maxTableNodes caches plus its home (dirty bit, owner, sticky
 * full-map presence bits). This is the state the guarded actions below
 * transform; coherence::FunctionalEngine implements the same
 * transitions on its concrete structures.
 */
constexpr unsigned maxTableNodes = 8;

struct BlockState
{
    std::array<cache::State, maxTableNodes> line{};
    bool dirty = false;
    NodeId owner = invalidNode;
    std::uint32_t presence = 0;

    bool operator==(const BlockState &) const = default;
};

/**
 * Access classification guard: what a (line state, op) pair needs.
 * Mirrors cache::CoherentCache::classify for a resident/absent block.
 */
cache::AccessResult classifyAccess(cache::State line, bool is_write);

/**
 * Apply one access's guarded actions to @p bs (requester @p p):
 * hits touch nothing; upgrades and write misses invalidate every other
 * copy and make @p p the exclusive owner; read misses downgrade a
 * dirty owner (refreshing memory) and add @p p as a sharer. Mirrors
 * FunctionalEngine::access minus statistics and capacity victims.
 */
void applyAccess(BlockState &bs, unsigned nodes, NodeId p,
                 bool is_write, Mutation m = Mutation::None);

/**
 * Apply a replacement: WE victims write back (dirty cleared, presence
 * bit dropped); RS victims are silent (presence bit stays — the
 * full map's sticky superset). Mirrors FunctionalEngine::handleVictim.
 */
void applyEvict(BlockState &bs, NodeId p);

} // namespace ringsim::core::ptable

#endif // RINGSIM_CORE_PROTOCOL_TABLE_HPP
