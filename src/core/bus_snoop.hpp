/**
 * @file
 * Timed snooping protocol for the split-transaction bus (Section 4.3).
 *
 * A FutureBus+-style split bus: a miss occupies the bus for a request
 * tenure (address broadcast + snoop) and, after the memory/cache
 * service time, a response tenure (header + block data + ack). With
 * 64-bit data paths and 16-byte blocks a remote miss needs six bus
 * cycles minimum, the paper's check value. Invalidations complete with
 * the request tenure alone; local clean read misses bypass the bus,
 * mirroring the ring protocols' assumption (dirty bit in memory).
 */

#ifndef RINGSIM_CORE_BUS_SNOOP_HPP
#define RINGSIM_CORE_BUS_SNOOP_HPP

#include <vector>

#include "bus/split_bus.hpp"
#include "coherence/engine.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "sim/kernel.hpp"

namespace ringsim::core {

/** The bus snooping controller set. */
class BusSnoopProtocol : public Protocol
{
  public:
    /** All references are borrowed and must outlive the protocol. */
    BusSnoopProtocol(sim::Kernel &kernel, const SystemConfig &config,
                     coherence::FunctionalEngine &engine,
                     bus::SplitBus &bus_res, Metrics &metrics);

    [[nodiscard]] bool
    tryAccess(NodeId p, const trace::TraceRecord &ref) override;

    void startTransaction(NodeId p, const trace::TraceRecord &ref,
                          std::function<void()> on_complete) override;

  private:
    /** FCFS memory bank at @p node. */
    Tick bankDone(NodeId node, Tick when, Tick service);

    /** Finish a transaction: sample latency and release the CPU. */
    void finish(LatClass cls, Tick issued,
                const std::function<void()> &on_complete);

    sim::Kernel &kernel_;
    SystemConfig config_;
    coherence::FunctionalEngine &engine_;
    bus::SplitBus &bus_;
    Metrics &metrics_;
    std::vector<Tick> bankFreeAt_;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_BUS_SNOOP_HPP
