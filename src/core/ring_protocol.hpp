/**
 * @file
 * Shared machinery of the timed ring protocols.
 *
 * Both ring protocols (snooping and full-map directory) need the same
 * plumbing: per-node outbound message queues in front of each slot
 * type, a per-node memory-bank FCFS queue, a transaction table, and
 * the glue that turns SlotRing callbacks into protocol steps. The
 * concrete protocols implement message handling and transaction
 * scripts on top.
 */

#ifndef RINGSIM_CORE_RING_PROTOCOL_HPP
#define RINGSIM_CORE_RING_PROTOCOL_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/engine.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "ring/network.hpp"
#include "sim/kernel.hpp"

namespace ringsim::core {

/** Message opcodes used on the ring by the timed protocols. */
enum RingMsgKind : std::uint32_t {
    MsgSnoopProbe = 1, //!< broadcast miss/invalidation probe (snoop)
    MsgDirRequest,     //!< point-to-point request to the home
    MsgDirForward,     //!< home-to-owner forward
    MsgDirMulticast,   //!< home-launched full-ring invalidation
    MsgDirAck,         //!< home-to-requester acknowledgment
    MsgBlockData,      //!< block message completing a transaction
    MsgBlockTraffic,   //!< block message with no waiting transaction
                       //!< (write-backs, memory refresh copies)
};

/** Base class of the timed ring protocols. */
class RingProtocolBase : public Protocol
{
  public:
    /**
     * All references are borrowed and must outlive the protocol.
     */
    RingProtocolBase(sim::Kernel &kernel, const SystemConfig &config,
                     coherence::FunctionalEngine &engine,
                     ring::SlotRing &ring_net, Metrics &metrics);

    ~RingProtocolBase() override;

    bool tryAccess(NodeId p, const trace::TraceRecord &ref) override;

    void startTransaction(NodeId p, const trace::TraceRecord &ref,
                          std::function<void()> on_complete) override;

    /** Outstanding transactions (tests/assertions). */
    size_t inFlight() const { return txns_.size(); }

  protected:
    /** One outstanding transaction. */
    struct Txn
    {
        std::uint64_t id = 0;
        NodeId requester = invalidNode;
        coherence::AccessOutcome outcome;
        LatClass cls = LatClass::LocalMiss;
        Tick issueTime = 0;
        unsigned remainingLegs = 1;
        /** The requester's own probe returning counts as a leg. */
        bool probeReturnLeg = false;
        /** Directory: memory data ready time (overlapped fetch). */
        Tick dataReadyAt = 0;
        std::function<void()> onComplete;
    };

    /**
     * Protocol script: called once per transaction, after the state
     * has been applied. Must set txn.cls and txn.remainingLegs and
     * kick off the transaction's first timing step(s).
     */
    virtual void launch(Txn &txn) = 0;

    /** A slot carrying a message reached node @p n. */
    virtual void handleMessage(NodeId n, ring::SlotHandle &slot) = 0;

    /** One leg of transaction @p id finished; completes at zero. */
    void legDone(std::uint64_t id);

    /** Queue @p msg for insertion at node @p n (type by message). */
    void enqueue(NodeId n, const ring::RingMessage &msg,
                 bool is_block);

    /** FCFS memory bank at @p node: returns service completion time
     *  for a request arriving at @p when. */
    Tick bankDone(NodeId node, Tick when, Tick service);

    /** Queue the victim write-back traffic of @p txn, if any. */
    void sendVictimWriteback(const Txn &txn);

    /** Look up an outstanding transaction; null if finished. */
    Txn *findTxn(std::uint64_t id);

    sim::Kernel &kernel_;
    SystemConfig config_;
    coherence::FunctionalEngine &engine_;
    ring::SlotRing &ring_;
    Metrics &metrics_;
    unsigned nodes_;

  private:
    /** RingClient adapter for one node. */
    class NodeClient : public ring::RingClient
    {
      public:
        NodeClient(RingProtocolBase &owner, NodeId node)
            : owner_(owner), node_(node)
        {}

        void onSlot(ring::SlotHandle &slot) override {
            owner_.onSlot(node_, slot);
        }

      private:
        RingProtocolBase &owner_;
        NodeId node_;
    };

    struct QueuedMsg
    {
        ring::RingMessage msg;
        Tick enqueued;
    };

    void onSlot(NodeId n, ring::SlotHandle &slot);
    void tryInsert(NodeId n, ring::SlotHandle &slot);

    std::deque<QueuedMsg> &queueFor(NodeId n, ring::SlotType t);

    std::vector<std::unique_ptr<NodeClient>> clients_;
    /** queues_[node * 3 + slot type] */
    std::vector<std::deque<QueuedMsg>> queues_;
    std::vector<Tick> bankFreeAt_;
    std::unordered_map<std::uint64_t, Txn> txns_;
    std::uint64_t nextTxnId_ = 1;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_RING_PROTOCOL_HPP
