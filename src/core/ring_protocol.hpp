/**
 * @file
 * Shared machinery of the timed ring protocols.
 *
 * Both ring protocols (snooping and full-map directory) need the same
 * plumbing: per-node outbound message queues in front of each slot
 * type, a per-node memory-bank FCFS queue, a transaction table, and
 * the glue that turns SlotRing callbacks into protocol steps. The
 * concrete protocols implement message handling and transaction
 * scripts on top.
 */

#ifndef RINGSIM_CORE_RING_PROTOCOL_HPP
#define RINGSIM_CORE_RING_PROTOCOL_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coherence/engine.hpp"
#include "core/config.hpp"
#include "core/flat_queue.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "fault/fault.hpp"
#include "ring/network.hpp"
#include "sim/kernel.hpp"

namespace ringsim::core {

/** Message opcodes used on the ring by the timed protocols. */
enum RingMsgKind : std::uint32_t {
    MsgSnoopProbe = 1, //!< broadcast miss/invalidation probe (snoop)
    MsgDirRequest,     //!< point-to-point request to the home
    MsgDirForward,     //!< home-to-owner forward
    MsgDirMulticast,   //!< home-launched full-ring invalidation
    MsgDirAck,         //!< home-to-requester acknowledgment
    MsgBlockData,      //!< block message completing a transaction
    MsgBlockTraffic,   //!< block message with no waiting transaction
                       //!< (write-backs, memory refresh copies)
    MsgNack,           //!< negative ack: a node discarded a corrupt
                       //!< message and asks its sender to retry
};

/**
 * Base class of the timed ring protocols.
 *
 * The protocol itself is the ring client for every node: one object
 * registered uniformly lets the ring hand it a whole rotation's live
 * visits in a single onVisits() call (no per-node trampoline, no
 * per-visit virtual hop). A visit on an empty slot with nothing queued
 * is a pure no-op (no state change, no statistics), so the constructor
 * opts every node into the ring's idle skipping; enqueue()/tryInsert()
 * keep the pending flags honest.
 */
class RingProtocolBase : public Protocol, public ring::RingClient
{
  public:
    /**
     * All references are borrowed and must outlive the protocol.
     */
    RingProtocolBase(sim::Kernel &kernel, const SystemConfig &config,
                     coherence::FunctionalEngine &engine,
                     ring::SlotRing &ring_net, Metrics &metrics);

    ~RingProtocolBase() override;

    [[nodiscard]] bool
    tryAccess(NodeId p, const trace::TraceRecord &ref) override;

    void startTransaction(NodeId p, const trace::TraceRecord &ref,
                          std::function<void()> on_complete) override;

    /** A slot header reached the interface of slot.node(). */
    void onSlot(ring::SlotHandle &slot) override;

    /**
     * One rotation's live visits, batch-dispatched by the ring.
     * Honors the onVisits contract: each visit only touches the
     * visited node's slot, queues and pending flags synchronously;
     * cross-node protocol steps are posted as kernel events.
     */
    void onVisits(ring::SlotRing &ring_net, const ring::SlotVisit *begin,
                  const ring::SlotVisit *end) override;

    /** Outstanding transactions (tests/assertions). */
    size_t inFlight() const { return txns_.size(); }

    /**
     * Enable fault recovery: NACK handling, per-transaction retry
     * watchdogs with exponential backoff, and graceful degradation
     * when retries are exhausted. @p injector is borrowed (it supplies
     * the recovery knobs and receives the recovery statistics); null
     * disables recovery. Resolves auto (zero) timeout/backoff values
     * from the ring geometry and service times.
     */
    void setFaultRecovery(fault::FaultInjector *injector);

  protected:
    /** One outstanding transaction. */
    struct Txn
    {
        std::uint64_t id = 0;
        NodeId requester = invalidNode;
        coherence::AccessOutcome outcome;
        LatClass cls = LatClass::LocalMiss;
        Tick issueTime = 0;
        unsigned remainingLegs = 1;
        /** The requester's own probe returning counts as a leg. */
        bool probeReturnLeg = false;
        /** Directory: memory data ready time (overlapped fetch). */
        Tick dataReadyAt = 0;
        /** Launch attempt, starting at 1; bumped by every retry. */
        unsigned attempt = 1;
        std::function<void()> onComplete;
    };

    /**
     * On-wire transaction identity. Message payloads carry a *tag* —
     * the transaction id combined with its launch attempt — so that
     * events raised by a superseded attempt (a probe still circulating
     * when the watchdog already relaunched the transaction) are
     * recognizably stale and ignored rather than double-completing.
     */
    static constexpr unsigned tagAttemptBits = 8;

    static std::uint64_t makeTag(std::uint64_t id, unsigned attempt) {
        return (id << tagAttemptBits) |
               (attempt & ((1u << tagAttemptBits) - 1));
    }
    static std::uint64_t tagTxn(std::uint64_t tag) {
        return tag >> tagAttemptBits;
    }
    static unsigned tagAttempt(std::uint64_t tag) {
        return static_cast<unsigned>(tag &
                                     ((1u << tagAttemptBits) - 1));
    }

    /** The current on-wire tag of @p txn. */
    static std::uint64_t tagOf(const Txn &txn) {
        return makeTag(txn.id, txn.attempt);
    }

    /**
     * Protocol script: called once per transaction, after the state
     * has been applied. Must set txn.cls and txn.remainingLegs and
     * kick off the transaction's first timing step(s).
     */
    virtual void launch(Txn &txn) = 0;

    /** A slot carrying a message reached node @p n. */
    virtual void handleMessage(NodeId n, ring::SlotHandle &slot) = 0;

    /** One leg of the transaction tagged @p tag finished; completes
     *  at zero. Stale tags (superseded attempts) are ignored when
     *  recovery is enabled. */
    void legDone(std::uint64_t tag);

    /** Queue @p msg for insertion at node @p n (type by message). */
    void enqueue(NodeId n, const ring::RingMessage &msg,
                 bool is_block);

    /** FCFS memory bank at @p node: returns service completion time
     *  for a request arriving at @p when. */
    Tick bankDone(NodeId node, Tick when, Tick service);

    /** Queue the victim write-back traffic of @p txn, if any. */
    void sendVictimWriteback(const Txn &txn);

    /** Look up an outstanding transaction; null if finished. */
    Txn *findTxn(std::uint64_t id);

    /**
     * Resolve a tag to its live transaction: null when the
     * transaction finished or the tag belongs to a superseded
     * attempt. Never panics and keeps no statistics — for passive
     * observers (snoop suppliers, probe returns).
     */
    Txn *activeTxn(std::uint64_t tag);

    /**
     * Like activeTxn(), but for events that *must* find their
     * transaction on an ideal ring: with recovery disabled a missing
     * transaction panics with @p what; with recovery enabled the
     * event counts as stale and null is returned.
     */
    Txn *requireTxn(std::uint64_t tag, const char *what);

    /** True when fault recovery is active. */
    bool recoveryEnabled() const { return recovery_; }

    sim::Kernel &kernel_;
    SystemConfig config_;
    coherence::FunctionalEngine &engine_;
    ring::SlotRing &ring_;
    Metrics &metrics_;
    unsigned nodes_;

  private:
    struct QueuedMsg
    {
        ring::RingMessage msg;
        Tick enqueued;
    };

    /** The per-visit protocol step (shared by onSlot and onVisits). */
    void visitSlot(NodeId n, ring::SlotHandle &slot);
    void tryInsert(NodeId n, ring::SlotHandle &slot);

    /** Discard a corrupt message at node @p n; NACK its sender. */
    void discardCorrupt(NodeId n, ring::SlotHandle &slot);

    /** Arm the retry watchdog for @p id's current attempt. */
    void armWatchdog(std::uint64_t id);
    /** Watchdog expiry for (@p id, @p attempt). */
    void onWatchdog(std::uint64_t id, unsigned attempt);
    /** A NACK for @p tag reached its sender. */
    void onNack(std::uint64_t tag);
    /** Begin a retry (or declare a fatal fault) for @p txn. */
    void retryTxn(Txn &txn);
    /** Re-run the launch script for (@p id, @p attempt). */
    void relaunch(std::uint64_t id, unsigned attempt);
    /**
     * Complete @p txn now (shared by legDone and fatal faults).
     * @p succeeded distinguishes a real completion — which counts as
     * recovered when it took more than one attempt — from a fatal
     * give-up, which must not.
     */
    void completeTxn(Txn &txn, bool succeeded = true);

    FlatQueue<QueuedMsg> &queueFor(NodeId n, ring::SlotType t);

    /** queues_[node * 3 + slot type]; flat ring buffers, each on its
     *  own cache line (FlatQueue is alignas(64)). */
    std::vector<FlatQueue<QueuedMsg>> queues_;
    /** Messages queued across all three of node n's queues; drives
     *  SlotRing::notifyPending / clearPending on 0↔1 transitions. */
    std::vector<unsigned> queuedMsgs_;
    std::vector<Tick> bankFreeAt_;
    std::unordered_map<std::uint64_t, Txn> txns_;
    std::uint64_t nextTxnId_ = 1;

    /** Fault recovery state (inactive unless setFaultRecovery ran). */
    fault::FaultInjector *faultInjector_ = nullptr;
    bool recovery_ = false;
    Tick retryTimeout_ = 0;
    Tick backoffBase_ = 0;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_RING_PROTOCOL_HPP
