#include "config.hpp"

#include "util/logging.hpp"

namespace ringsim::core {

const char *
protocolName(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::RingSnoop:
        return "ring-snoop";
      case ProtocolKind::RingDirectory:
        return "ring-directory";
      case ProtocolKind::BusSnoop:
        return "bus-snoop";
    }
    return "?";
}

void
SystemConfig::validate() const
{
    if (procCycle == 0)
        fatal("processor cycle time must be nonzero");
    if (memoryLatency == 0)
        fatal("memory latency must be nonzero");
    if (warmupFrac < 0.0 || warmupFrac >= 1.0)
        fatal("warmup fraction must be in [0, 1)");
    cacheGeometry.validate();
}

RingSystemConfig
RingSystemConfig::forProcs(unsigned procs, Tick ring_period)
{
    RingSystemConfig cfg;
    cfg.ring.nodes = procs;
    cfg.ring.clockPeriod = ring_period;
    cfg.ring.frame.blockBytes = cfg.common.cacheGeometry.blockBytes;
    return cfg;
}

BusSystemConfig
BusSystemConfig::forProcs(unsigned procs, Tick bus_period)
{
    BusSystemConfig cfg;
    cfg.bus.nodes = procs;
    cfg.bus.clockPeriod = bus_period;
    cfg.bus.blockBytes = cfg.common.cacheGeometry.blockBytes;
    return cfg;
}

} // namespace ringsim::core
