#include "config.hpp"

#include "util/logging.hpp"

namespace ringsim::core {

const char *
protocolName(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::RingSnoop:
        return "ring-snoop";
      case ProtocolKind::RingDirectory:
        return "ring-directory";
      case ProtocolKind::BusSnoop:
        return "bus-snoop";
    }
    return "?";
}

std::vector<std::string>
SystemConfig::checkConfig() const
{
    std::vector<std::string> errors;
    if (procCycle == 0) {
        errors.push_back(
            "procCycle = 0: processor cycle time must be nonzero");
    } else if (procCycle > 1'000'000) {
        errors.push_back(strprintf(
            "procCycle = %llu ps: processor cycle time is below "
            "1 MIPS; the paper sweeps 1-20 ns cycles",
            static_cast<unsigned long long>(procCycle)));
    }
    if (memoryLatency == 0)
        errors.push_back(
            "memoryLatency = 0: memory bank access time must be "
            "nonzero");
    if (!(warmupFrac >= 0.0) || warmupFrac >= 1.0)
        errors.push_back(strprintf(
            "warmupFrac = %g: warmup fraction must be in [0, 1)",
            warmupFrac));
    for (std::string &e : faults.check())
        errors.push_back(std::move(e));
    return errors;
}

void
SystemConfig::validate() const
{
    std::vector<std::string> errors = checkConfig();
    if (!errors.empty())
        fatal("%s", errors.front().c_str());
    cacheGeometry.validate();
}

RingSystemConfig
RingSystemConfig::forProcs(unsigned procs, Tick ring_period)
{
    RingSystemConfig cfg;
    cfg.ring.nodes = procs;
    cfg.ring.clockPeriod = ring_period;
    cfg.ring.frame.blockBytes = cfg.common.cacheGeometry.blockBytes;
    return cfg;
}

BusSystemConfig
BusSystemConfig::forProcs(unsigned procs, Tick bus_period)
{
    BusSystemConfig cfg;
    cfg.bus.nodes = procs;
    cfg.bus.clockPeriod = bus_period;
    cfg.bus.blockBytes = cfg.common.cacheGeometry.blockBytes;
    return cfg;
}

} // namespace ringsim::core
