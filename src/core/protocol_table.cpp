#include "protocol_table.hpp"

#include "coherence/classify.hpp"
#include "util/logging.hpp"

namespace ringsim::core::ptable {

const char *
mutationName(Mutation m)
{
    switch (m) {
      case Mutation::None:
        return "none";
      case Mutation::DropInvalidation:
        return "drop-invalidation";
      case Mutation::KeepDirtyOnRead:
        return "keep-dirty-on-read";
      case Mutation::SnoopExtraTraversal:
        return "snoop-extra-traversal";
      case Mutation::SnoopMemorySupplier:
        return "snoop-memory-supplier";
      case Mutation::DirSkipForward:
        return "dir-skip-forward";
      case Mutation::DirSkipMulticast:
        return "dir-skip-multicast";
      case Mutation::AcceptStaleAttempt:
        return "accept-stale-attempt";
    }
    return "?";
}

bool
mutationFromName(const std::string &name, Mutation *out)
{
    if (name == "none") {
        *out = Mutation::None;
        return true;
    }
    for (Mutation m : allMutations) {
        if (name == mutationName(m)) {
            *out = m;
            return true;
        }
    }
    return false;
}

RequestView
viewOf(const coherence::AccessOutcome &outcome, NodeId requester)
{
    RequestView rv;
    rv.isUpgrade =
        outcome.type == coherence::AccessOutcome::Type::Upgrade;
    rv.isWrite = outcome.isWrite;
    rv.homeIsLocal = outcome.home == requester;
    rv.wasDirty = outcome.wasDirty;
    rv.mapSharers = outcome.mapSharers;
    return rv;
}

SnoopPlan
snoopPlan(const RequestView &rv, Mutation m)
{
    SnoopPlan p;
    p.probeLoops = m == Mutation::SnoopExtraTraversal ? 2 : 1;
    p.supplier = rv.wasDirty ? SnoopSupplier::OwnerCache
                             : SnoopSupplier::HomeMemory;
    if (m == Mutation::SnoopMemorySupplier)
        p.supplier = SnoopSupplier::HomeMemory;

    if (rv.isUpgrade) {
        // Invalidation: one broadcast probe; done when it returns.
        p.cls = LatClass::Upgrade;
        p.legs = 1;
        p.probeReturnLeg = true;
        return p;
    }
    if (!rv.wasDirty && rv.homeIsLocal) {
        // The local bank answers, but the transaction commits when
        // the probe returns: both legs must finish.
        p.cls = LatClass::LocalMiss;
        p.legs = 2;
        p.probeReturnLeg = true;
        p.localBankLeg = true;
        return p;
    }
    // Remote data: completion is the block's arrival.
    p.cls = rv.wasDirty ? LatClass::DirtyMiss1 : LatClass::CleanMiss1;
    p.legs = 1;
    p.remoteData = true;
    return p;
}

bool
dirNeedsMulticast(const RequestView &rv)
{
    if (rv.isUpgrade)
        return rv.mapSharers;
    return rv.isWrite && !rv.wasDirty && rv.mapSharers;
}

DirPlan
dirPlan(unsigned nodes, NodeId requester, NodeId home, NodeId owner,
        const RequestView &rv, Mutation m)
{
    DirPlan p;
    p.requestLeg = !rv.homeIsLocal;
    p.forwardToOwner = rv.wasDirty && m != Mutation::DirSkipForward;
    p.multicast =
        dirNeedsMulticast(rv) && m != Mutation::DirSkipMulticast;
    p.respondData = !rv.isUpgrade;
    p.homeBankFetch = !rv.isUpgrade && !rv.wasDirty;

    if (rv.isUpgrade) {
        p.cls = LatClass::Upgrade;
        p.traversals = coherence::dirUpgradeTraversals(
            nodes, requester, home, dirNeedsMulticast(rv));
        return p;
    }
    coherence::DirMiss dm = coherence::classifyDirMiss(
        nodes, requester, home, rv.wasDirty, owner,
        dirNeedsMulticast(rv));
    switch (dm.cls) {
      case coherence::DirMissClass::Local:
        p.cls = LatClass::LocalMiss;
        break;
      case coherence::DirMissClass::Clean1:
        p.cls = LatClass::CleanMiss1;
        break;
      case coherence::DirMissClass::Dirty1:
        p.cls = LatClass::DirtyMiss1;
        break;
      case coherence::DirMissClass::Two:
        p.cls = LatClass::Miss2;
        break;
    }
    p.traversals = dm.traversals;
    return p;
}

cache::AccessResult
classifyAccess(cache::State line, bool is_write)
{
    switch (line) {
      case cache::State::Invalid:
        return cache::AccessResult::Miss;
      case cache::State::ReadShared:
        return is_write ? cache::AccessResult::UpgradeMiss
                        : cache::AccessResult::Hit;
      case cache::State::WriteExcl:
        return cache::AccessResult::Hit;
    }
    return cache::AccessResult::Miss;
}

namespace {

/**
 * Invalidate every other cached copy (the shared half of the upgrade
 * and write-miss actions). DropInvalidation skips the highest-numbered
 * holder, leaving a recognizably stale copy for the checker to find.
 */
void
invalidateOthers(BlockState &bs, unsigned nodes, NodeId p, Mutation m)
{
    NodeId spare = invalidNode;
    if (m == Mutation::DropInvalidation) {
        for (unsigned q = nodes; q-- > 0;) {
            if (q != p && bs.line[q] != cache::State::Invalid) {
                spare = static_cast<NodeId>(q);
                break;
            }
        }
    }
    for (NodeId q = 0; q < nodes; ++q) {
        if (q == p || q == spare)
            continue;
        bs.line[q] = cache::State::Invalid;
    }
}

void
makeExclusive(BlockState &bs, NodeId p)
{
    bs.dirty = true;
    bs.owner = p;
    bs.presence = std::uint32_t(1) << p;
}

} // namespace

void
applyAccess(BlockState &bs, unsigned nodes, NodeId p, bool is_write,
            Mutation m)
{
    if (p >= nodes || nodes > maxTableNodes)
        panic("applyAccess: node %u out of range (%u nodes)", p, nodes);

    cache::AccessResult res = classifyAccess(bs.line[p], is_write);
    if (res == cache::AccessResult::Hit)
        return;

    if (res == cache::AccessResult::UpgradeMiss || is_write) {
        // Upgrade or write miss: sole WE holder, everyone else out.
        invalidateOthers(bs, nodes, p, m);
        bs.line[p] = cache::State::WriteExcl;
        makeExclusive(bs, p);
        return;
    }

    // Read miss: a dirty owner downgrades (its data refreshes the
    // home memory); the requester joins the sharers.
    if (bs.dirty && bs.owner != p) {
        bs.line[bs.owner] = cache::State::ReadShared;
        bs.presence |= std::uint32_t(1) << bs.owner;
        if (m != Mutation::KeepDirtyOnRead) {
            bs.dirty = false;
            bs.owner = invalidNode;
        }
    }
    bs.line[p] = cache::State::ReadShared;
    bs.presence |= std::uint32_t(1) << p;
}

void
applyEvict(BlockState &bs, NodeId p)
{
    if (bs.line[p] == cache::State::Invalid)
        return;
    if (bs.line[p] == cache::State::WriteExcl) {
        // Write back: memory is fresh again, presence bit drops.
        bs.dirty = false;
        bs.owner = invalidNode;
        bs.presence &= ~(std::uint32_t(1) << p);
    }
    // RS replacement is silent: the sticky presence bit stays set.
    bs.line[p] = cache::State::Invalid;
}

} // namespace ringsim::core::ptable
