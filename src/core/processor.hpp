/**
 * @file
 * Trace-driven processor model.
 *
 * Section 4.1 baseline: processors execute one instruction per cycle
 * as long as accesses hit in the cache, and block on all misses and
 * invalidations. Runs of hits are batched into a single kernel event
 * (the hit path changes no interconnect state), so simulation cost is
 * dominated by transactions, not references.
 *
 * Extension (paper Section 6, "latency tolerance"): an optional store
 * buffer of depth K makes write misses and invalidations non-blocking
 * (weak ordering): the store retires into the buffer and its
 * transaction proceeds in the background; the processor only stalls
 * when the buffer is full (or on read misses, which always block —
 * the load's value is needed). Depth 0 is the paper's blocking
 * baseline.
 */

#ifndef RINGSIM_CORE_PROCESSOR_HPP
#define RINGSIM_CORE_PROCESSOR_HPP

#include <functional>

#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "sim/kernel.hpp"
#include "trace/stream.hpp"

namespace ringsim::core {

/** One CPU consuming its reference stream. */
class Processor
{
  public:
    /**
     * @param kernel event kernel.
     * @param proc this processor's node id.
     * @param cycle processor cycle time in ticks.
     * @param stream reference stream (not owned; must outlive).
     * @param protocol timed protocol (not owned; must outlive).
     * @param metrics run metrics (not owned; must outlive).
     */
    Processor(sim::Kernel &kernel, NodeId proc, Tick cycle,
              trace::RefStream &stream, Protocol &protocol,
              Metrics &metrics);

    /** Called once when this processor crosses the warmup boundary. */
    void onWarm(std::function<void()> cb) { onWarm_ = std::move(cb); }

    /** Called once when the stream is exhausted. */
    void onDone(std::function<void()> cb) { onDone_ = std::move(cb); }

    /** Data references after which onWarm fires (0 = immediately). */
    void setWarmupRefs(Count refs) { warmupRefs_ = refs; }

    /**
     * Enable non-blocking stores through a @p depth entry store
     * buffer (0 = block on all misses and invalidations, the paper's
     * baseline).
     */
    void setStoreBufferDepth(unsigned depth) { storeDepth_ = depth; }

    /** Begin executing at time @p start_at. */
    void start(Tick start_at = 0);

    /** True when the stream is exhausted. */
    bool done() const { return done_; }

    /** Data references consumed so far. */
    Count dataRefs() const { return dataRefs_; }

    /** Transactions issued so far. */
    Count transactions() const { return transactions_; }

  private:
    /** Consume references until a transaction is needed or the stream
     *  ends; schedules the next step. */
    void execute();

    /** Issue the pending transaction (after its hit run elapsed). */
    void issue();

    /** Transaction completed: account the stall and continue. */
    void complete();

    sim::Kernel &kernel_;
    NodeId proc_;
    Tick cycle_;
    trace::RefStream &stream_;
    Protocol &protocol_;
    Metrics &metrics_;

    /** Post a background (store-buffer) transaction at @p when. */
    void issueStore(Tick when, const trace::TraceRecord &rec);

    trace::TraceRecord pending_{};
    bool done_ = false;
    Count dataRefs_ = 0;
    Count transactions_ = 0;
    Count warmupRefs_ = 0;
    bool warmed_ = false;
    Tick issueTime_ = 0;
    unsigned storeDepth_ = 0;
    unsigned outstandingStores_ = 0;

    std::function<void()> onWarm_;
    std::function<void()> onDone_;
};

} // namespace ringsim::core

#endif // RINGSIM_CORE_PROCESSOR_HPP
