/**
 * @file
 * Cache geometry: size/block/associativity math shared by the cache
 * model, the trace characterizer and the coherence engines.
 *
 * The paper's fixed configuration is a 128 KB direct-mapped data cache
 * with 16-byte blocks (Section 4.1); both are parameters here so the
 * Table 3 sweeps (block sizes 16..128 B) and sensitivity studies work.
 */

#ifndef RINGSIM_CACHE_GEOMETRY_HPP
#define RINGSIM_CACHE_GEOMETRY_HPP

#include <cstddef>

#include "util/units.hpp"

namespace ringsim::cache {

/** Geometry of one cache: capacity, block size and associativity. */
struct Geometry
{
    /** Total capacity in bytes. */
    size_t sizeBytes = 128 * 1024;

    /** Cache block (line) size in bytes; must be a power of two. */
    size_t blockBytes = 16;

    /** Ways per set; 1 = direct mapped. */
    unsigned assoc = 1;

    /** Number of blocks the cache can hold. */
    size_t blocks() const { return sizeBytes / blockBytes; }

    /** Number of sets. */
    size_t sets() const { return blocks() / assoc; }

    /** Strip the block offset: the global block number of @p addr. */
    Addr blockNumber(Addr addr) const { return addr / blockBytes; }

    /** First byte address of the block containing @p addr. */
    Addr blockBase(Addr addr) const {
        return blockNumber(addr) * blockBytes;
    }

    /** Set index for @p addr. */
    size_t setIndex(Addr addr) const {
        return static_cast<size_t>(blockNumber(addr) % sets());
    }

    /** Tag for @p addr (block number with the index bits removed). */
    Addr tag(Addr addr) const { return blockNumber(addr) / sets(); }

    /** Reassemble a block base address from tag and set index. */
    Addr blockFromTag(Addr tag_value, size_t set) const {
        return (tag_value * sets() + set) * blockBytes;
    }

    /** Validate invariants (power-of-two sizes, divisibility). */
    void validate() const;
};

} // namespace ringsim::cache

#endif // RINGSIM_CACHE_GEOMETRY_HPP
