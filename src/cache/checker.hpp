/**
 * @file
 * Global coherence invariant checker.
 *
 * Traces carry no data values, so instead of byte-comparing memory we
 * track a version number per block: every completed write bumps it.
 * The checker mirrors which node holds each block in which state and
 * asserts, on every protocol action, the two invariants any
 * write-invalidate protocol must preserve:
 *
 *  - single writer: at most one WE copy, and never alongside RS copies;
 *  - no stale reads: a fill that is served from memory must observe the
 *    latest version (i.e. memory must have been updated by a write-back
 *    or owner copy-back before a clean fill happens).
 *
 * Every timed and functional protocol implementation in ringsim drives
 * a checker; integration tests run full systems with it enabled.
 */

#ifndef RINGSIM_CACHE_CHECKER_HPP
#define RINGSIM_CACHE_CHECKER_HPP

#include <cstdint>
#include <unordered_map>

#include "cache/invariant_monitor.hpp"
#include "util/units.hpp"

namespace ringsim::cache {

/**
 * Tracks per-block holder sets and versions across all nodes.
 * Supports systems of up to 64 nodes (the paper's maximum).
 */
class CoherenceChecker
{
  public:
    /** @param nodes number of caches in the system (<= 64). */
    explicit CoherenceChecker(unsigned nodes);

    /** Number of nodes being tracked. */
    unsigned nodes() const { return nodes_; }

    /**
     * Route violations to @p monitor instead of panicking directly
     * (null restores the panic-on-violation default). Borrowed; must
     * outlive the checker.
     */
    void setMonitor(InvariantMonitor *monitor) { monitor_ = monitor; }

    /** The attached monitor, or null. */
    InvariantMonitor *monitor() const { return monitor_; }

    /**
     * Node @p node obtained an RS copy of @p block.
     * @param from_memory true if served by the home memory (clean),
     *        false if supplied by the owning cache.
     */
    void readFill(NodeId node, Addr block, bool from_memory);

    /** Node @p node obtained a WE copy (write miss or upgrade). */
    void writeFill(NodeId node, Addr block);

    /** Node @p node performed a store hit on its WE copy. */
    void writeHit(NodeId node, Addr block);

    /** Node @p node lost its copy (invalidation or replacement). */
    void drop(NodeId node, Addr block);

    /**
     * Node @p node's WE copy became RS; its data went back to memory
     * (remote read of a dirty block).
     */
    void downgrade(NodeId node, Addr block);

    /** Node @p node wrote its dirty copy back to memory and dropped it. */
    void writeback(NodeId node, Addr block);

    /** State queries used by tests. */
    bool holds(NodeId node, Addr block) const;
    bool holdsExclusive(NodeId node, Addr block) const;
    NodeId writer(Addr block) const;
    unsigned sharerCount(Addr block) const;

    /** Total writes observed (version sum); used as a sanity stat. */
    std::uint64_t totalWrites() const { return totalWrites_; }

    /** Number of invariant checks performed. */
    std::uint64_t checksPerformed() const { return checks_; }

  private:
    struct Entry
    {
        std::uint64_t readers = 0;   //!< bitmask of RS holders
        NodeId writer = invalidNode; //!< WE holder, if any
        std::uint32_t version = 0;   //!< bumped by every write
        std::uint32_t memVersion = 0; //!< version memory has observed
    };

    Entry &entry(Addr block) { return blocks_[block]; }
    void checkEntry(const Entry &e, Addr block) const;

    /** Panic with @p detail, or hand it to the monitor when attached. */
    void fail(Violation::Kind kind, Addr block, NodeId node,
              NodeId other, std::string detail) const;

    InvariantMonitor *monitor_ = nullptr;
    unsigned nodes_;
    std::unordered_map<Addr, Entry> blocks_;
    std::uint64_t totalWrites_ = 0;
    mutable std::uint64_t checks_ = 0;
};

} // namespace ringsim::cache

#endif // RINGSIM_CACHE_CHECKER_HPP
