#include "geometry.hpp"

#include "util/logging.hpp"

namespace ringsim::cache {

namespace {

bool
isPow2(size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
Geometry::validate() const
{
    if (!isPow2(blockBytes))
        fatal("cache block size %zu is not a power of two", blockBytes);
    if (!isPow2(sizeBytes))
        fatal("cache size %zu is not a power of two", sizeBytes);
    if (assoc == 0)
        fatal("cache associativity must be nonzero");
    if (sizeBytes % blockBytes != 0)
        fatal("cache size %zu not a multiple of block size %zu",
              sizeBytes, blockBytes);
    if (blocks() % assoc != 0)
        fatal("cache blocks %zu not divisible by associativity %u",
              blocks(), assoc);
}

} // namespace ringsim::cache
