#include "invariant_monitor.hpp"

#include "util/logging.hpp"

namespace ringsim::cache {

const char *
violationKindName(Violation::Kind k)
{
    switch (k) {
      case Violation::Kind::MultipleWriters:
        return "multiple-writers";
      case Violation::Kind::StaleRead:
        return "stale-read";
      case Violation::Kind::BadTransition:
        return "bad-transition";
      case Violation::Kind::DirectoryMismatch:
        return "directory-mismatch";
      case Violation::Kind::TraversalOverrun:
        return "traversal-overrun";
    }
    return "?";
}

void
InvariantMonitor::report(Violation v)
{
    if (mode_ == Mode::Abort)
        panic("%s", v.detail.c_str());
    violations_.push_back(std::move(v));
}

std::size_t
InvariantMonitor::countOf(Violation::Kind k) const
{
    std::size_t n = 0;
    for (const Violation &v : violations_)
        if (v.kind == k)
            ++n;
    return n;
}

std::string
InvariantMonitor::summary() const
{
    if (violations_.empty())
        return "invariants: clean\n";
    std::string out = strprintf("invariants: %zu violation(s)\n",
                                violations_.size());
    for (std::size_t i = 0; i < violations_.size(); ++i) {
        const Violation &v = violations_[i];
        out += strprintf("  [%zu] %s block=%llx node=%d", i,
                         violationKindName(v.kind),
                         static_cast<unsigned long long>(v.block),
                         v.node == invalidNode ? -1
                                               : static_cast<int>(v.node));
        if (v.other != invalidNode)
            out += strprintf(" other=%d", static_cast<int>(v.other));
        if (v.txn != 0)
            out += strprintf(" txn=%llu",
                             static_cast<unsigned long long>(v.txn));
        if (v.slot >= 0)
            out += strprintf(" slot=%d", v.slot);
        out += strprintf(": %s\n", v.detail.c_str());
    }
    return out;
}

} // namespace ringsim::cache
