/**
 * @file
 * Continuous coherence invariant monitor.
 *
 * The CoherenceChecker knows *what* the protocol invariants are
 * (single writer, no stale reads); this class decides what happens
 * when one breaks. Without a monitor the checker panics on the first
 * violation — right for tests on an ideal ring. Under fault injection,
 * or when a run wants a post-mortem instead of an abort, components
 * route violations here: each is captured as a structured record
 * naming the invariant, the block, the nodes and (when known) the
 * transaction and ring slot involved.
 *
 * Modes:
 *  - Abort: panic on the first violation (the checker's historical
 *    behavior, with the same message text);
 *  - Record: accumulate violations and keep running, so a test can
 *    assert that a deliberately broken protocol is caught, or a
 *    faulted run can report every consequence of an injected fault.
 */

#ifndef RINGSIM_CACHE_INVARIANT_MONITOR_HPP
#define RINGSIM_CACHE_INVARIANT_MONITOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace ringsim::cache {

/** One observed invariant violation. */
struct Violation
{
    /** Which invariant broke. */
    enum class Kind {
        MultipleWriters,   //!< SWMR: WE copy alongside other copies
        StaleRead,         //!< a fill observed out-of-date memory
        BadTransition,     //!< an impossible protocol state change
        DirectoryMismatch, //!< directory and cache state disagree
        TraversalOverrun,  //!< a message circled the ring > once
    };

    Kind kind = Kind::BadTransition;
    Addr block = 0;               //!< block involved
    NodeId node = invalidNode;    //!< primary node
    NodeId other = invalidNode;   //!< secondary node, if any
    std::uint64_t txn = 0;        //!< transaction id, 0 if unknown
    int slot = -1;                //!< ring slot index, -1 if n/a
    std::string detail;           //!< human-readable description
};

/** Printable violation-kind name. */
const char *violationKindName(Violation::Kind k);

/** The violation sink. */
class InvariantMonitor
{
  public:
    /** What report() does with a violation. */
    enum class Mode {
        Abort,  //!< panic with the violation's detail text
        Record, //!< keep the record, keep running
    };

    explicit InvariantMonitor(Mode mode = Mode::Abort) : mode_(mode) {}

    /** Submit one violation; panics in Abort mode. */
    void report(Violation v);

    /** Count one passed invariant check (cheap, for coverage stats). */
    void noteCheck() { ++checks_; }

    /** True when no violation has been reported. */
    bool clean() const { return violations_.empty(); }

    /** Every recorded violation, in observation order. */
    const std::vector<Violation> &violations() const {
        return violations_;
    }

    /** Checks counted via noteCheck(). */
    std::uint64_t checksPerformed() const { return checks_; }

    /** Violations of a specific kind. */
    std::size_t countOf(Violation::Kind k) const;

    /** Multi-line structured report of all recorded violations. */
    std::string summary() const;

    Mode mode() const { return mode_; }

  private:
    Mode mode_;
    std::vector<Violation> violations_;
    std::uint64_t checks_ = 0;
};

} // namespace ringsim::cache

#endif // RINGSIM_CACHE_INVARIANT_MONITOR_HPP
