#include "checker.hpp"

#include "util/logging.hpp"

namespace ringsim::cache {

CoherenceChecker::CoherenceChecker(unsigned nodes)
    : nodes_(nodes)
{
    if (nodes == 0 || nodes > 64)
        fatal("CoherenceChecker supports 1..64 nodes, got %u", nodes);
}

void
CoherenceChecker::fail(Violation::Kind kind, Addr block, NodeId node,
                       NodeId other, std::string detail) const
{
    if (!monitor_)
        panic("%s", detail.c_str());
    Violation v;
    v.kind = kind;
    v.block = block;
    v.node = node;
    v.other = other;
    v.detail = std::move(detail);
    monitor_->report(std::move(v));
}

void
CoherenceChecker::checkEntry(const Entry &e, Addr block) const
{
    ++checks_;
    if (monitor_)
        monitor_->noteCheck();
    if (e.writer != invalidNode && e.readers != 0) {
        fail(Violation::Kind::MultipleWriters, block, e.writer,
             invalidNode,
             strprintf("block %llx: WE copy at node %u coexists with "
                       "RS copies (mask %llx)",
                       static_cast<unsigned long long>(block), e.writer,
                       static_cast<unsigned long long>(e.readers)));
    }
}

void
CoherenceChecker::readFill(NodeId node, Addr block, bool from_memory)
{
    Entry &e = entry(block);
    if (node >= nodes_)
        panic("readFill from out-of-range node %u", node);
    if (e.writer == node) {
        fail(Violation::Kind::BadTransition, block, node, invalidNode,
             strprintf("block %llx: node %u read-fills while holding WE",
                       static_cast<unsigned long long>(block), node));
    }
    if (from_memory) {
        if (e.writer != invalidNode && e.writer != node) {
            fail(Violation::Kind::StaleRead, block, node, e.writer,
                 strprintf("block %llx: clean fill at node %u while "
                           "node %u holds a dirty copy",
                           static_cast<unsigned long long>(block), node,
                           e.writer));
        }
        if (e.memVersion != e.version) {
            fail(Violation::Kind::StaleRead, block, node, invalidNode,
                 strprintf("block %llx: clean fill at node %u reads "
                           "version %u but latest is %u (stale memory)",
                           static_cast<unsigned long long>(block), node,
                           e.memVersion, e.version));
        }
    } else {
        if (e.writer == invalidNode) {
            fail(Violation::Kind::BadTransition, block, node,
                 invalidNode,
                 strprintf("block %llx: cache-supplied fill at node %u "
                           "but no dirty copy exists",
                           static_cast<unsigned long long>(block),
                           node));
        }
    }
    e.readers |= (std::uint64_t(1) << node);
    checkEntry(e, block);
}

void
CoherenceChecker::writeFill(NodeId node, Addr block)
{
    Entry &e = entry(block);
    if (node >= nodes_)
        panic("writeFill from out-of-range node %u", node);
    std::uint64_t others = e.readers & ~(std::uint64_t(1) << node);
    if (others != 0) {
        fail(Violation::Kind::MultipleWriters, block, node, invalidNode,
             strprintf("block %llx: node %u gains WE while RS copies "
                       "remain (mask %llx)",
                       static_cast<unsigned long long>(block), node,
                       static_cast<unsigned long long>(others)));
    }
    if (e.writer != invalidNode && e.writer != node) {
        fail(Violation::Kind::MultipleWriters, block, node, e.writer,
             strprintf("block %llx: node %u gains WE while node %u "
                       "holds WE",
                       static_cast<unsigned long long>(block), node,
                       e.writer));
    }
    e.readers = 0;
    e.writer = node;
    ++e.version;
    ++totalWrites_;
    checkEntry(e, block);
}

void
CoherenceChecker::writeHit(NodeId node, Addr block)
{
    Entry &e = entry(block);
    if (e.writer != node) {
        fail(Violation::Kind::BadTransition, block, node, e.writer,
             strprintf("block %llx: write hit at node %u but WE holder "
                       "is %d",
                       static_cast<unsigned long long>(block), node,
                       e.writer == invalidNode
                           ? -1
                           : static_cast<int>(e.writer)));
    }
    ++e.version;
    ++totalWrites_;
    checkEntry(e, block);
}

void
CoherenceChecker::drop(NodeId node, Addr block)
{
    Entry &e = entry(block);
    if (e.writer == node) {
        fail(Violation::Kind::BadTransition, block, node, invalidNode,
             strprintf("block %llx: WE copy at node %u dropped without "
                       "write-back",
                       static_cast<unsigned long long>(block), node));
        e.writer = invalidNode;
    }
    e.readers &= ~(std::uint64_t(1) << node);
    checkEntry(e, block);
}

void
CoherenceChecker::downgrade(NodeId node, Addr block)
{
    Entry &e = entry(block);
    if (e.writer != node) {
        fail(Violation::Kind::BadTransition, block, node, e.writer,
             strprintf("block %llx: downgrade at node %u but WE holder "
                       "is %d",
                       static_cast<unsigned long long>(block), node,
                       e.writer == invalidNode
                           ? -1
                           : static_cast<int>(e.writer)));
    }
    e.writer = invalidNode;
    e.readers |= (std::uint64_t(1) << node);
    e.memVersion = e.version; // owner copied data back to memory
    checkEntry(e, block);
}

void
CoherenceChecker::writeback(NodeId node, Addr block)
{
    Entry &e = entry(block);
    if (e.writer != node) {
        fail(Violation::Kind::BadTransition, block, node, e.writer,
             strprintf("block %llx: write-back from node %u but WE "
                       "holder is %d",
                       static_cast<unsigned long long>(block), node,
                       e.writer == invalidNode
                           ? -1
                           : static_cast<int>(e.writer)));
    }
    e.writer = invalidNode;
    e.memVersion = e.version;
    checkEntry(e, block);
}

bool
CoherenceChecker::holds(NodeId node, Addr block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return false;
    const Entry &e = it->second;
    return e.writer == node ||
           (e.readers & (std::uint64_t(1) << node)) != 0;
}

bool
CoherenceChecker::holdsExclusive(NodeId node, Addr block) const
{
    auto it = blocks_.find(block);
    return it != blocks_.end() && it->second.writer == node;
}

NodeId
CoherenceChecker::writer(Addr block) const
{
    auto it = blocks_.find(block);
    return it == blocks_.end() ? invalidNode : it->second.writer;
}

unsigned
CoherenceChecker::sharerCount(Addr block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return 0;
    return static_cast<unsigned>(__builtin_popcountll(it->second.readers));
}

} // namespace ringsim::cache
