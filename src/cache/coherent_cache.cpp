#include "coherent_cache.hpp"

#include "util/logging.hpp"

namespace ringsim::cache {

const char *
stateName(State s)
{
    switch (s) {
      case State::Invalid:
        return "INV";
      case State::ReadShared:
        return "RS";
      case State::WriteExcl:
        return "WE";
    }
    return "?";
}

CoherentCache::CoherentCache(const Geometry &geometry)
    : geom_(geometry)
{
    geom_.validate();
    lines_.resize(geom_.blocks());
}

int
CoherentCache::findWay(Addr addr) const
{
    size_t set = geom_.setIndex(addr);
    Addr tag = geom_.tag(addr);
    for (unsigned way = 0; way < geom_.assoc; ++way) {
        const Line &l = line(set, way);
        if (l.state != State::Invalid && l.tag == tag)
            return static_cast<int>(way);
    }
    return -1;
}

AccessResult
CoherentCache::classify(Addr addr, bool is_write) const
{
    int way = findWay(addr);
    if (way < 0)
        return AccessResult::Miss;
    const Line &l = line(geom_.setIndex(addr), static_cast<unsigned>(way));
    if (!is_write)
        return AccessResult::Hit;
    return l.state == State::WriteExcl ? AccessResult::Hit
                                       : AccessResult::UpgradeMiss;
}

State
CoherentCache::state(Addr addr) const
{
    int way = findWay(addr);
    if (way < 0)
        return State::Invalid;
    return line(geom_.setIndex(addr), static_cast<unsigned>(way)).state;
}

void
CoherentCache::touch(Addr addr)
{
    int way = findWay(addr);
    if (way < 0)
        panic("touch of uncached address %llx",
              static_cast<unsigned long long>(addr));
    line(geom_.setIndex(addr), static_cast<unsigned>(way)).lastUse =
        ++useClock_;
    hits_.inc();
}

Victim
CoherentCache::fill(Addr addr, State new_state)
{
    if (new_state == State::Invalid)
        panic("fill with Invalid state");
    size_t set = geom_.setIndex(addr);
    Addr tag = geom_.tag(addr);

    // Re-filling a present block (e.g. upgrade implemented as a fill)
    // must not allocate a second way.
    int present = findWay(addr);
    if (present >= 0) {
        Line &l = line(set, static_cast<unsigned>(present));
        l.state = new_state;
        l.lastUse = ++useClock_;
        fills_.inc();
        return {};
    }

    // Choose an invalid way, else the LRU way.
    unsigned victim_way = 0;
    bool found_invalid = false;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (unsigned way = 0; way < geom_.assoc; ++way) {
        Line &l = line(set, way);
        if (l.state == State::Invalid) {
            victim_way = way;
            found_invalid = true;
            break;
        }
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim_way = way;
        }
    }

    Victim victim;
    Line &l = line(set, victim_way);
    if (!found_invalid) {
        victim.valid = true;
        victim.blockAddr = geom_.blockFromTag(l.tag, set);
        victim.state = l.state;
        evictions_.inc();
        if (l.state == State::WriteExcl)
            writebacks_.inc();
    }

    l.tag = tag;
    l.state = new_state;
    l.lastUse = ++useClock_;
    fills_.inc();
    return victim;
}

void
CoherentCache::upgrade(Addr addr)
{
    int way = findWay(addr);
    if (way < 0)
        panic("upgrade of uncached address %llx",
              static_cast<unsigned long long>(addr));
    Line &l = line(geom_.setIndex(addr), static_cast<unsigned>(way));
    if (l.state != State::ReadShared)
        panic("upgrade of a block in state %s", stateName(l.state));
    l.state = State::WriteExcl;
    l.lastUse = ++useClock_;
}

void
CoherentCache::invalidate(Addr addr)
{
    int way = findWay(addr);
    if (way < 0)
        return;
    line(geom_.setIndex(addr), static_cast<unsigned>(way)).state =
        State::Invalid;
}

void
CoherentCache::downgrade(Addr addr)
{
    int way = findWay(addr);
    if (way < 0)
        panic("downgrade of uncached address %llx",
              static_cast<unsigned long long>(addr));
    Line &l = line(geom_.setIndex(addr), static_cast<unsigned>(way));
    if (l.state != State::WriteExcl)
        panic("downgrade of a block in state %s", stateName(l.state));
    l.state = State::ReadShared;
}

size_t
CoherentCache::validBlocks() const
{
    size_t n = 0;
    for (const Line &l : lines_)
        if (l.state != State::Invalid)
            ++n;
    return n;
}

void
CoherentCache::clear()
{
    for (Line &l : lines_)
        l = Line{};
    useClock_ = 0;
}

} // namespace ringsim::cache
