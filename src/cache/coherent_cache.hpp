/**
 * @file
 * A 3-state (INV / RS / WE) coherent cache model.
 *
 * The protocol of the paper (Section 3.1) uses three block states:
 * Invalid, Read-Shared (read-only) and Write-Exclusive (read-write,
 * i.e. dirty and owned). This class models the tag/state array only —
 * traces carry no data, so correctness is checked with version numbers
 * by cache::CoherenceChecker instead of byte values.
 */

#ifndef RINGSIM_CACHE_COHERENT_CACHE_HPP
#define RINGSIM_CACHE_COHERENT_CACHE_HPP

#include <cstdint>
#include <vector>

#include "cache/geometry.hpp"
#include "stats/stats.hpp"
#include "util/units.hpp"

namespace ringsim::cache {

/** Coherence state of a cached block. */
enum class State : std::uint8_t {
    Invalid,      //!< not present
    ReadShared,   //!< present read-only (RS)
    WriteExcl,    //!< present read-write, dirty, owned (WE)
};

/** Printable name of a state. */
const char *stateName(State s);

/** Outcome of a cache access attempt. */
enum class AccessResult : std::uint8_t {
    Hit,          //!< usable copy present (RS for reads, WE for writes)
    Miss,         //!< block absent: a read or write miss
    UpgradeMiss,  //!< write to an RS copy: needs an invalidation only
};

/** A block displaced by a fill. */
struct Victim
{
    bool valid = false;    //!< a block was displaced
    Addr blockAddr = 0;    //!< base address of the displaced block
    State state = State::Invalid; //!< its state (WE => write back)
};

/**
 * Tag/state array of one processor's data cache. Set-associative with
 * true-LRU replacement; the paper's configuration is direct mapped.
 */
class CoherentCache
{
  public:
    /** Build a cache with the given geometry (validated here). */
    explicit CoherentCache(const Geometry &geometry);

    /** The cache's geometry. */
    const Geometry &geometry() const { return geom_; }

    /**
     * Classify an access without changing any state.
     *
     * @param addr byte address accessed.
     * @param is_write true for stores.
     */
    [[nodiscard]] AccessResult classify(Addr addr, bool is_write) const;

    /** Current state of the block containing @p addr. */
    State state(Addr addr) const;

    /**
     * Record a hit (refreshes LRU). classify() must have returned Hit.
     */
    void touch(Addr addr);

    /**
     * Install the block containing @p addr in @p new_state, evicting
     * the LRU way of the set if needed.
     *
     * @return the displaced block, if any.
     */
    Victim fill(Addr addr, State new_state);

    /** Upgrade an RS copy to WE (after invalidations complete). */
    void upgrade(Addr addr);

    /** Invalidate the copy of @p addr if present. */
    void invalidate(Addr addr);

    /**
     * Downgrade a WE copy to RS (remote read observed). The block must
     * be present in WE state.
     */
    void downgrade(Addr addr);

    /** Number of valid (non-Invalid) blocks currently cached. */
    size_t validBlocks() const;

    /** Hits recorded via touch(). */
    const stats::Counter &hits() const { return hits_; }

    /** Fills recorded via fill(). */
    const stats::Counter &fills() const { return fills_; }

    /** Evictions of valid blocks. */
    const stats::Counter &evictions() const { return evictions_; }

    /** Evictions of WE (dirty) blocks, i.e. write-backs. */
    const stats::Counter &writebacks() const { return writebacks_; }

    /** Drop all blocks and reset LRU (stats retained). */
    void clear();

  private:
    struct Line
    {
        Addr tag = 0;
        State state = State::Invalid;
        std::uint64_t lastUse = 0;
    };

    /** Find the way holding @p addr, or -1. */
    int findWay(Addr addr) const;

    Line &line(size_t set, unsigned way) {
        return lines_[set * geom_.assoc + way];
    }
    const Line &line(size_t set, unsigned way) const {
        return lines_[set * geom_.assoc + way];
    }

    Geometry geom_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;

    stats::Counter hits_;
    stats::Counter fills_;
    stats::Counter evictions_;
    stats::Counter writebacks_;
};

} // namespace ringsim::cache

#endif // RINGSIM_CACHE_COHERENT_CACHE_HPP
