#include "dual_directory.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace ringsim::cache {

DualDirectory::DualDirectory(const Geometry &geometry, unsigned banks)
    : geom_(geometry), last_(banks, 0), seen_(banks, false),
      lookups_(banks, 0)
{
    if (banks == 0)
        fatal("DualDirectory needs at least one bank");
    geom_.validate();
}

unsigned
DualDirectory::bank(Addr addr) const
{
    // Interleave by low block-number bits: bank 0 serves even block
    // addresses, bank 1 odd ones (paper Section 3.3).
    return static_cast<unsigned>(geom_.blockNumber(addr) % banks());
}

Tick
DualDirectory::lookup(Addr addr, Tick now)
{
    unsigned b = bank(addr);
    ++lookups_[b];
    ++total_;
    Tick gap = 0;
    if (seen_[b]) {
        if (now < last_[b])
            panic("DualDirectory lookups out of time order");
        gap = now - last_[b];
        minGap_ = std::min(minGap_, gap);
    }
    seen_[b] = true;
    last_[b] = now;
    return gap;
}

Count
DualDirectory::bankLookups(unsigned bank_idx) const
{
    if (bank_idx >= lookups_.size())
        panic("DualDirectory bank %u out of range", bank_idx);
    return lookups_[bank_idx];
}

} // namespace ringsim::cache
