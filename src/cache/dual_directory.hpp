/**
 * @file
 * Dual-directory (snooper tag mirror) timing model.
 *
 * Section 3.3 of the paper: the snooping ring interface keeps a second
 * copy of the cache tags — the dual directory — that probes are checked
 * against at ring speed. With a 2-way interleaved dual directory (one
 * bank for even block addresses, one for odd), consecutive probes for
 * the same bank are separated by at least one frame time, which bounds
 * the rate the snooper hardware must sustain (Table 3).
 *
 * This class models the banked lookup stream: it records per-bank
 * inter-arrival statistics and can assert that the frame interleaving
 * really enforces the minimum spacing.
 */

#ifndef RINGSIM_CACHE_DUAL_DIRECTORY_HPP
#define RINGSIM_CACHE_DUAL_DIRECTORY_HPP

#include <vector>

#include "cache/geometry.hpp"
#include "stats/stats.hpp"
#include "util/units.hpp"

namespace ringsim::cache {

/** Banked snoop-tag mirror with inter-arrival accounting. */
class DualDirectory
{
  public:
    /**
     * @param geometry the mirrored cache's geometry (for bank hashing).
     * @param banks interleaving factor; the paper uses 2.
     */
    DualDirectory(const Geometry &geometry, unsigned banks = 2);

    /** Bank servicing the block that contains @p addr. */
    unsigned bank(Addr addr) const;

    /**
     * Record a probe lookup for @p addr at time @p now.
     * @return ticks since the previous lookup to the same bank, or 0
     *         for the first lookup.
     */
    Tick lookup(Addr addr, Tick now);

    /** Smallest inter-arrival observed on any bank (max Tick if none). */
    Tick minInterArrival() const { return minGap_; }

    /** Lookups recorded per bank. */
    Count bankLookups(unsigned bank_idx) const;

    /** Total lookups recorded. */
    Count totalLookups() const { return total_; }

    /** Interleaving factor. */
    unsigned banks() const { return static_cast<unsigned>(last_.size()); }

  private:
    Geometry geom_;
    std::vector<Tick> last_;
    std::vector<bool> seen_;
    std::vector<Count> lookups_;
    Tick minGap_ = ~Tick(0);
    Count total_ = 0;
};

} // namespace ringsim::cache

#endif // RINGSIM_CACHE_DUAL_DIRECTORY_HPP
