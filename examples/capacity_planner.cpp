/**
 * @file
 * Capacity planner: use the analytic models the way an architect
 * would — pick a workload and a processor speed, then compare
 * interconnect options (ring clocks, bus clocks) on processor
 * utilization, and report the bus clock that would be needed to match
 * each ring (the Table 4 question for arbitrary operating points).
 *
 *   $ ./build/examples/capacity_planner [benchmark] [procs] [mips]
 *   $ ./build/examples/capacity_planner mp3d 32 200
 */

#include <cstdlib>
#include <iostream>

#include "model/calibration.hpp"
#include "model/matcher.hpp"
#include "util/table.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    trace::Benchmark bench = trace::Benchmark::MP3D;
    unsigned procs = 16;
    double mips = 200;
    if (argc > 1)
        bench = trace::benchmarkFromName(argv[1]);
    if (argc > 2)
        procs = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
    if (argc > 3)
        mips = std::strtod(argv[3], nullptr);

    trace::WorkloadConfig workload =
        trace::workloadPreset(bench, procs);
    workload.dataRefsPerProc = 60'000;
    coherence::Census census = model::calibrate(workload);
    Tick cycle = nsToTicks(1e3 / mips);

    std::cout << "Workload " << workload.displayName() << " at " << mips
              << " MIPS per processor\n\n";

    TextTable table({"interconnect", "proc util %", "net util %",
                     "miss latency (ns)", "matching bus clock (ns)"});

    for (auto [label, period] :
         {std::pair<const char *, Tick>{"ring 500 MHz", 2000},
          {"ring 250 MHz", 4000}}) {
        model::RingModelInput in;
        in.census = census;
        in.ring = core::RingSystemConfig::forProcs(procs, period).ring;
        in.system.procCycle = cycle;
        in.protocol = model::RingProtocol::Snoop;
        model::ModelResult r = model::solveRing(in);

        model::BusModelInput bin;
        bin.census = census;
        bin.bus = core::BusSystemConfig::forProcs(procs).bus;
        bin.system.procCycle = cycle;
        double match_ns =
            model::matchBusClock(bin, r.procUtilization);

        table.addRow({label, fmtPercent(r.procUtilization, 1),
                      fmtPercent(r.networkUtilization, 1),
                      fmtDouble(r.missLatencyNs, 0),
                      fmtDouble(match_ns, 1)});
    }

    for (auto [label, period] :
         {std::pair<const char *, Tick>{"bus 100 MHz", 10000},
          {"bus 50 MHz", 20000}}) {
        model::BusModelInput in;
        in.census = census;
        in.bus = core::BusSystemConfig::forProcs(procs, period).bus;
        in.system.procCycle = cycle;
        model::ModelResult r = model::solveBus(in);
        table.addRow({label, fmtPercent(r.procUtilization, 1),
                      fmtPercent(r.networkUtilization, 1),
                      fmtDouble(r.missLatencyNs, 0), "-"});
    }

    table.print(std::cout);
    std::cout << "\n'matching bus clock' = bus cycle time at which a "
                 "64-bit split-transaction bus\nreaches the same "
                 "processor utilization (Table 4 methodology).\n";
    return 0;
}
