/**
 * @file
 * Trace explorer: generate a synthetic trace, show a window of raw
 * references, characterize it through the 128 KB cache (Table 2
 * quantities), and optionally save it as a binary trace file.
 *
 *   $ ./build/examples/trace_explorer [benchmark] [procs] [out.trc]
 *   $ ./build/examples/trace_explorer water 16 /tmp/water16.trc
 */

#include <cstdio>
#include <cstdlib>

#include "coherence/driver.hpp"
#include "trace/generator.hpp"
#include "trace/trace_file.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    trace::Benchmark bench = trace::Benchmark::MP3D;
    unsigned procs = 8;
    const char *out_path = nullptr;
    if (argc > 1)
        bench = trace::benchmarkFromName(argv[1]);
    if (argc > 2)
        procs = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
    if (argc > 3)
        out_path = argv[3];

    trace::WorkloadConfig cfg = trace::workloadPreset(bench, procs);
    cfg.dataRefsPerProc = 50'000;
    trace::AddressMap map = trace::makeAddressMap(cfg);

    // A window of raw references from processor 0.
    std::printf("First data references of processor 0 (%s):\n",
                cfg.displayName().c_str());
    trace::SyntheticStream stream(cfg, map, 0);
    trace::TraceRecord rec;
    int shown = 0;
    while (shown < 12 && stream.next(rec)) {
        if (!rec.isData())
            continue;
        std::printf("  %s %012llx  %s  home=%u\n", trace::opName(rec.op),
                    static_cast<unsigned long long>(rec.addr),
                    map.isShared(rec.addr) ? "shared " : "private",
                    map.home(rec.addr));
        ++shown;
    }

    // Characterize through the paper's cache (Table 2 quantities).
    coherence::Census c = coherence::runFunctional(cfg);
    std::printf("\nCharacteristics under a 128 KB DM cache "
                "(paper targets in parentheses):\n");
    std::printf("  shared refs      : %4.1f %% of data refs\n",
                100.0 * static_cast<double>(c.sharedRefs()) /
                    static_cast<double>(c.dataRefs()));
    std::printf("  shared write frac: %4.1f %%  (%4.1f %%)\n",
                100.0 * c.sharedWriteFrac(),
                100.0 * cfg.targets.sharedWriteFrac);
    std::printf("  total miss rate  : %5.2f %%  (%5.2f %%)\n",
                100.0 * c.totalMissRate(),
                100.0 * cfg.targets.totalMissRate);
    std::printf("  shared miss rate : %5.2f %%  (%5.2f %%)\n",
                100.0 * c.sharedMissRate(),
                100.0 * cfg.targets.sharedMissRate);
    std::printf("  write-backs      : %llu\n",
                static_cast<unsigned long long>(c.writebacks));

    if (out_path) {
        trace::TraceSet set = trace::makeTraceSet(cfg, map);
        trace::MaterializedTrace mat = trace::materialize(set);
        if (trace::writeTraceFile(out_path, mat)) {
            std::printf("\nTrace written to %s (%u processors)\n",
                        out_path, procs);
        }
    }
    return 0;
}
