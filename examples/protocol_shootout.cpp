/**
 * @file
 * Protocol shootout: run one workload on all three timed systems —
 * ring snooping, ring directory and the split-transaction bus — and
 * print a side-by-side comparison.
 *
 *   $ ./build/examples/protocol_shootout [benchmark] [procs]
 *   $ ./build/examples/protocol_shootout cholesky 16
 */

#include <cstdlib>
#include <iostream>

#include "core/system.hpp"
#include "util/table.hpp"

using namespace ringsim;

int
main(int argc, char **argv)
{
    trace::Benchmark bench = trace::Benchmark::MP3D;
    unsigned procs = 8;
    if (argc > 1)
        bench = trace::benchmarkFromName(argv[1]);
    if (argc > 2)
        procs = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));

    trace::WorkloadConfig workload =
        trace::workloadPreset(bench, procs);
    workload.dataRefsPerProc = 60'000;

    TextTable table({"system", "proc util %", "net util %",
                     "miss latency (ns)", "invalidation (ns)"});

    auto add = [&table](const char *name, const core::RunResult &r) {
        table.addRow({name, fmtPercent(r.procUtilization, 1),
                      fmtPercent(r.networkUtilization, 1),
                      fmtDouble(r.missLatencyNs, 0),
                      fmtDouble(r.upgradeLatencyNs, 0)});
    };

    core::RingSystemConfig ring_cfg =
        core::RingSystemConfig::forProcs(procs);
    add("ring 500MHz / snooping",
        core::runRingSystem(ring_cfg, workload,
                            core::ProtocolKind::RingSnoop));
    add("ring 500MHz / directory",
        core::runRingSystem(ring_cfg, workload,
                            core::ProtocolKind::RingDirectory));

    core::BusSystemConfig bus_cfg =
        core::BusSystemConfig::forProcs(procs, 10000);
    add("bus 100MHz / snooping",
        core::runBusSystem(bus_cfg, workload));
    bus_cfg = core::BusSystemConfig::forProcs(procs, 20000);
    add("bus  50MHz / snooping", core::runBusSystem(bus_cfg, workload));

    std::cout << "Workload: " << workload.displayName()
              << " (50 MIPS processors)\n";
    table.print(std::cout);
    return 0;
}
