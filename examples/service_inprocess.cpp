/**
 * @file
 * In-process experiment service: embed ServiceCore without a daemon
 * or socket — the same NDJSON protocol ringsim_serve speaks, driven
 * directly through handleLine(). Useful for scripting many related
 * questions against one warm cache (here: how does an analytic ring
 * model's processor utilization move with system size, asked twice to
 * show the second pass answering from the cache).
 *
 *   $ ./build/examples/service_inprocess [benchmark]
 *   $ ./build/examples/service_inprocess water
 */

#include <iostream>
#include <string>

#include "service/server.hpp"
#include "util/json.hpp"

using namespace ringsim;

namespace {

std::string
modelRequest(const std::string &bench, unsigned procs)
{
    util::JsonValue job = util::JsonValue::object();
    job.set("type", util::JsonValue::string("model"));
    job.set("benchmark", util::JsonValue::string(bench));
    job.set("procs", util::JsonValue::integer(procs));
    job.set("fast", util::JsonValue::boolean(true));
    util::JsonValue req = util::JsonValue::object();
    req.set("op", util::JsonValue::string("submit"));
    req.set("wait", util::JsonValue::boolean(true));
    req.set("job", std::move(job));
    return req.dump();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "mp3d";

    service::ServiceConfig cfg;
    cfg.workers = 2;
    service::ServiceCore core(cfg);

    for (int pass = 1; pass <= 2; ++pass) {
        std::cout << "pass " << pass << ":\n";
        for (unsigned procs : {8u, 16u, 32u}) {
            util::JsonValue response;
            std::string error;
            std::string line =
                core.handleLine("example", modelRequest(bench, procs));
            if (!util::tryParseJson(line, &response, &error)) {
                std::cerr << "bad response: " << error << "\n";
                return 1;
            }
            std::vector<std::string> errors;
            if (!response.getBool("ok", false, &errors)) {
                std::cerr << line << "\n";
                return 1;
            }
            const util::JsonValue *result = response.find("result");
            double util_pct =
                result ? result->getNumber("proc_util", 0, &errors) * 100
                       : 0;
            bool cached = response.getBool("cached", false, &errors);
            std::cout << "  " << bench << " @ " << procs
                      << " procs: proc util "
                      << static_cast<int>(util_pct) << "%"
                      << (cached ? "  (cache hit)" : "") << "\n";
        }
    }

    std::string statsz = core.handleLine("example", "{\"op\":\"statsz\"}");
    std::cout << "statsz: " << statsz << "\n";
    return 0;
}
