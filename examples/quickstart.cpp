/**
 * @file
 * Quickstart: build an 8-processor 500 MHz slotted ring with the
 * snooping protocol, run the MP3D workload on it, and print the
 * measurements the paper's figures are made of.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "core/system.hpp"

using namespace ringsim;

int
main()
{
    // 1. Pick a workload: the paper's MP3D at 8 processors.
    trace::WorkloadConfig workload =
        trace::workloadPreset(trace::Benchmark::MP3D, 8);
    workload.dataRefsPerProc = 60'000;

    // 2. Configure the system: 500 MHz 32-bit slotted ring, 50 MIPS
    //    processors, 128 KB direct-mapped caches (all paper defaults).
    core::RingSystemConfig config = core::RingSystemConfig::forProcs(8);
    config.common.check = true; // coherence invariants asserted live

    // 3. Run it with the snooping protocol.
    core::RunResult r = core::runRingSystem(
        config, workload, core::ProtocolKind::RingSnoop);

    // 4. Report.
    std::printf("workload           : %s\n",
                workload.displayName().c_str());
    std::printf("ring               : %u nodes, %u stages, %.0f ns "
                "round trip\n",
                config.ring.nodes, config.ring.totalStages(),
                ticksToNs(config.ring.roundTripTime()));
    std::printf("processor util     : %.1f %%\n",
                100.0 * r.procUtilization);
    std::printf("ring slot util     : %.1f %%\n",
                100.0 * r.networkUtilization);
    std::printf("remote miss latency: %.0f ns\n", r.missLatencyNs);
    std::printf("invalidation delay : %.0f ns\n", r.upgradeLatencyNs);
    std::printf("slot acquire wait  : %.1f ns\n", r.acquireWaitNs);
    std::printf("miss classes       : %llu local, %llu clean-1, "
                "%llu dirty-1, %llu two-cycle, %llu upgrades\n",
                static_cast<unsigned long long>(r.localMisses),
                static_cast<unsigned long long>(r.cleanMiss1),
                static_cast<unsigned long long>(r.dirtyMiss1),
                static_cast<unsigned long long>(r.miss2),
                static_cast<unsigned long long>(r.upgrades));
    std::printf("measured window    : %.2f ms simulated\n",
                static_cast<double>(r.window) / tickMs);
    return 0;
}
