file(REMOVE_RECURSE
  "CMakeFiles/ring_test.dir/ring/config_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring/config_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring/frame_layout_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring/frame_layout_test.cpp.o.d"
  "CMakeFiles/ring_test.dir/ring/network_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring/network_test.cpp.o.d"
  "ring_test"
  "ring_test.pdb"
  "ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
