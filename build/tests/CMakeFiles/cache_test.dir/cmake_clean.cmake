file(REMOVE_RECURSE
  "CMakeFiles/cache_test.dir/cache/checker_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/checker_test.cpp.o.d"
  "CMakeFiles/cache_test.dir/cache/coherent_cache_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/coherent_cache_test.cpp.o.d"
  "CMakeFiles/cache_test.dir/cache/dual_directory_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/dual_directory_test.cpp.o.d"
  "CMakeFiles/cache_test.dir/cache/geometry_test.cpp.o"
  "CMakeFiles/cache_test.dir/cache/geometry_test.cpp.o.d"
  "cache_test"
  "cache_test.pdb"
  "cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
