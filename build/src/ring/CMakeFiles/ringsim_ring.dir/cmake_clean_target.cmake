file(REMOVE_RECURSE
  "libringsim_ring.a"
)
