# Empty dependencies file for ringsim_ring.
# This may be replaced when dependencies are built.
