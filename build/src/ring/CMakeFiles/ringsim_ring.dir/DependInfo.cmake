
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ring/config.cpp" "src/ring/CMakeFiles/ringsim_ring.dir/config.cpp.o" "gcc" "src/ring/CMakeFiles/ringsim_ring.dir/config.cpp.o.d"
  "/root/repo/src/ring/frame_layout.cpp" "src/ring/CMakeFiles/ringsim_ring.dir/frame_layout.cpp.o" "gcc" "src/ring/CMakeFiles/ringsim_ring.dir/frame_layout.cpp.o.d"
  "/root/repo/src/ring/network.cpp" "src/ring/CMakeFiles/ringsim_ring.dir/network.cpp.o" "gcc" "src/ring/CMakeFiles/ringsim_ring.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ringsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ringsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ringsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
