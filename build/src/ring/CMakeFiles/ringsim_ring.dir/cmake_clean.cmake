file(REMOVE_RECURSE
  "CMakeFiles/ringsim_ring.dir/config.cpp.o"
  "CMakeFiles/ringsim_ring.dir/config.cpp.o.d"
  "CMakeFiles/ringsim_ring.dir/frame_layout.cpp.o"
  "CMakeFiles/ringsim_ring.dir/frame_layout.cpp.o.d"
  "CMakeFiles/ringsim_ring.dir/network.cpp.o"
  "CMakeFiles/ringsim_ring.dir/network.cpp.o.d"
  "libringsim_ring.a"
  "libringsim_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
