file(REMOVE_RECURSE
  "libringsim_cache.a"
)
