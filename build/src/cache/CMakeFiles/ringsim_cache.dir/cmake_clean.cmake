file(REMOVE_RECURSE
  "CMakeFiles/ringsim_cache.dir/checker.cpp.o"
  "CMakeFiles/ringsim_cache.dir/checker.cpp.o.d"
  "CMakeFiles/ringsim_cache.dir/coherent_cache.cpp.o"
  "CMakeFiles/ringsim_cache.dir/coherent_cache.cpp.o.d"
  "CMakeFiles/ringsim_cache.dir/dual_directory.cpp.o"
  "CMakeFiles/ringsim_cache.dir/dual_directory.cpp.o.d"
  "CMakeFiles/ringsim_cache.dir/geometry.cpp.o"
  "CMakeFiles/ringsim_cache.dir/geometry.cpp.o.d"
  "libringsim_cache.a"
  "libringsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
