# Empty compiler generated dependencies file for ringsim_cache.
# This may be replaced when dependencies are built.
