
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/checker.cpp" "src/cache/CMakeFiles/ringsim_cache.dir/checker.cpp.o" "gcc" "src/cache/CMakeFiles/ringsim_cache.dir/checker.cpp.o.d"
  "/root/repo/src/cache/coherent_cache.cpp" "src/cache/CMakeFiles/ringsim_cache.dir/coherent_cache.cpp.o" "gcc" "src/cache/CMakeFiles/ringsim_cache.dir/coherent_cache.cpp.o.d"
  "/root/repo/src/cache/dual_directory.cpp" "src/cache/CMakeFiles/ringsim_cache.dir/dual_directory.cpp.o" "gcc" "src/cache/CMakeFiles/ringsim_cache.dir/dual_directory.cpp.o.d"
  "/root/repo/src/cache/geometry.cpp" "src/cache/CMakeFiles/ringsim_cache.dir/geometry.cpp.o" "gcc" "src/cache/CMakeFiles/ringsim_cache.dir/geometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ringsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ringsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
