file(REMOVE_RECURSE
  "CMakeFiles/ringsim_sim.dir/kernel.cpp.o"
  "CMakeFiles/ringsim_sim.dir/kernel.cpp.o.d"
  "libringsim_sim.a"
  "libringsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
