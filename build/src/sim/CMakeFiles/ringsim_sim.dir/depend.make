# Empty dependencies file for ringsim_sim.
# This may be replaced when dependencies are built.
