file(REMOVE_RECURSE
  "libringsim_sim.a"
)
