# Empty compiler generated dependencies file for ringsim_bus.
# This may be replaced when dependencies are built.
