file(REMOVE_RECURSE
  "CMakeFiles/ringsim_bus.dir/split_bus.cpp.o"
  "CMakeFiles/ringsim_bus.dir/split_bus.cpp.o.d"
  "libringsim_bus.a"
  "libringsim_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
