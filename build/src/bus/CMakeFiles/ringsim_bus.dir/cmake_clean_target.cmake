file(REMOVE_RECURSE
  "libringsim_bus.a"
)
