file(REMOVE_RECURSE
  "libringsim_util.a"
)
