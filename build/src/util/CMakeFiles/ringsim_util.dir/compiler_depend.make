# Empty compiler generated dependencies file for ringsim_util.
# This may be replaced when dependencies are built.
