file(REMOVE_RECURSE
  "CMakeFiles/ringsim_util.dir/logging.cpp.o"
  "CMakeFiles/ringsim_util.dir/logging.cpp.o.d"
  "CMakeFiles/ringsim_util.dir/rng.cpp.o"
  "CMakeFiles/ringsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/ringsim_util.dir/table.cpp.o"
  "CMakeFiles/ringsim_util.dir/table.cpp.o.d"
  "libringsim_util.a"
  "libringsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
