file(REMOVE_RECURSE
  "CMakeFiles/ringsim_model.dir/bus_model.cpp.o"
  "CMakeFiles/ringsim_model.dir/bus_model.cpp.o.d"
  "CMakeFiles/ringsim_model.dir/calibration.cpp.o"
  "CMakeFiles/ringsim_model.dir/calibration.cpp.o.d"
  "CMakeFiles/ringsim_model.dir/insertion_model.cpp.o"
  "CMakeFiles/ringsim_model.dir/insertion_model.cpp.o.d"
  "CMakeFiles/ringsim_model.dir/matcher.cpp.o"
  "CMakeFiles/ringsim_model.dir/matcher.cpp.o.d"
  "CMakeFiles/ringsim_model.dir/ring_model.cpp.o"
  "CMakeFiles/ringsim_model.dir/ring_model.cpp.o.d"
  "libringsim_model.a"
  "libringsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
