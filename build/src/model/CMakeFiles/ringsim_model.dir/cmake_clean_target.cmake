file(REMOVE_RECURSE
  "libringsim_model.a"
)
