# Empty dependencies file for ringsim_model.
# This may be replaced when dependencies are built.
