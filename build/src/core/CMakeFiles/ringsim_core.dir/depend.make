# Empty dependencies file for ringsim_core.
# This may be replaced when dependencies are built.
