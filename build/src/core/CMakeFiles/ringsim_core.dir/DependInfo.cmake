
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bus_snoop.cpp" "src/core/CMakeFiles/ringsim_core.dir/bus_snoop.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/bus_snoop.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/ringsim_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/config.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/ringsim_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/processor.cpp" "src/core/CMakeFiles/ringsim_core.dir/processor.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/processor.cpp.o.d"
  "/root/repo/src/core/ring_directory.cpp" "src/core/CMakeFiles/ringsim_core.dir/ring_directory.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/ring_directory.cpp.o.d"
  "/root/repo/src/core/ring_protocol.cpp" "src/core/CMakeFiles/ringsim_core.dir/ring_protocol.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/ring_protocol.cpp.o.d"
  "/root/repo/src/core/ring_snoop.cpp" "src/core/CMakeFiles/ringsim_core.dir/ring_snoop.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/ring_snoop.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/ringsim_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/ringsim_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ringsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ringsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ringsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ringsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ringsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/ringsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ringsim_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ringsim_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
