file(REMOVE_RECURSE
  "libringsim_core.a"
)
