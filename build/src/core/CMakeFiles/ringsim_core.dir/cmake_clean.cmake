file(REMOVE_RECURSE
  "CMakeFiles/ringsim_core.dir/bus_snoop.cpp.o"
  "CMakeFiles/ringsim_core.dir/bus_snoop.cpp.o.d"
  "CMakeFiles/ringsim_core.dir/config.cpp.o"
  "CMakeFiles/ringsim_core.dir/config.cpp.o.d"
  "CMakeFiles/ringsim_core.dir/metrics.cpp.o"
  "CMakeFiles/ringsim_core.dir/metrics.cpp.o.d"
  "CMakeFiles/ringsim_core.dir/processor.cpp.o"
  "CMakeFiles/ringsim_core.dir/processor.cpp.o.d"
  "CMakeFiles/ringsim_core.dir/ring_directory.cpp.o"
  "CMakeFiles/ringsim_core.dir/ring_directory.cpp.o.d"
  "CMakeFiles/ringsim_core.dir/ring_protocol.cpp.o"
  "CMakeFiles/ringsim_core.dir/ring_protocol.cpp.o.d"
  "CMakeFiles/ringsim_core.dir/ring_snoop.cpp.o"
  "CMakeFiles/ringsim_core.dir/ring_snoop.cpp.o.d"
  "CMakeFiles/ringsim_core.dir/system.cpp.o"
  "CMakeFiles/ringsim_core.dir/system.cpp.o.d"
  "libringsim_core.a"
  "libringsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
