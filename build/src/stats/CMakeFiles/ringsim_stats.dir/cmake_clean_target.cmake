file(REMOVE_RECURSE
  "libringsim_stats.a"
)
