# Empty compiler generated dependencies file for ringsim_stats.
# This may be replaced when dependencies are built.
