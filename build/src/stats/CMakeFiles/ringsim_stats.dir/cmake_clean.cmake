file(REMOVE_RECURSE
  "CMakeFiles/ringsim_stats.dir/stats.cpp.o"
  "CMakeFiles/ringsim_stats.dir/stats.cpp.o.d"
  "libringsim_stats.a"
  "libringsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
