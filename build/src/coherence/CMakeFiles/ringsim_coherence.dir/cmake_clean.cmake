file(REMOVE_RECURSE
  "CMakeFiles/ringsim_coherence.dir/classify.cpp.o"
  "CMakeFiles/ringsim_coherence.dir/classify.cpp.o.d"
  "CMakeFiles/ringsim_coherence.dir/driver.cpp.o"
  "CMakeFiles/ringsim_coherence.dir/driver.cpp.o.d"
  "CMakeFiles/ringsim_coherence.dir/engine.cpp.o"
  "CMakeFiles/ringsim_coherence.dir/engine.cpp.o.d"
  "libringsim_coherence.a"
  "libringsim_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
