
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/classify.cpp" "src/coherence/CMakeFiles/ringsim_coherence.dir/classify.cpp.o" "gcc" "src/coherence/CMakeFiles/ringsim_coherence.dir/classify.cpp.o.d"
  "/root/repo/src/coherence/driver.cpp" "src/coherence/CMakeFiles/ringsim_coherence.dir/driver.cpp.o" "gcc" "src/coherence/CMakeFiles/ringsim_coherence.dir/driver.cpp.o.d"
  "/root/repo/src/coherence/engine.cpp" "src/coherence/CMakeFiles/ringsim_coherence.dir/engine.cpp.o" "gcc" "src/coherence/CMakeFiles/ringsim_coherence.dir/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ringsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ringsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ringsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ringsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
