file(REMOVE_RECURSE
  "libringsim_coherence.a"
)
