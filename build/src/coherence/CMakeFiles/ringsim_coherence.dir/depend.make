# Empty dependencies file for ringsim_coherence.
# This may be replaced when dependencies are built.
