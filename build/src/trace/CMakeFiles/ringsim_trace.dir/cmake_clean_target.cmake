file(REMOVE_RECURSE
  "libringsim_trace.a"
)
