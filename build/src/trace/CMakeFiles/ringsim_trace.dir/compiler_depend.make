# Empty compiler generated dependencies file for ringsim_trace.
# This may be replaced when dependencies are built.
