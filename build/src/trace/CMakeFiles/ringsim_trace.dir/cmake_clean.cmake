file(REMOVE_RECURSE
  "CMakeFiles/ringsim_trace.dir/address_map.cpp.o"
  "CMakeFiles/ringsim_trace.dir/address_map.cpp.o.d"
  "CMakeFiles/ringsim_trace.dir/generator.cpp.o"
  "CMakeFiles/ringsim_trace.dir/generator.cpp.o.d"
  "CMakeFiles/ringsim_trace.dir/patterns.cpp.o"
  "CMakeFiles/ringsim_trace.dir/patterns.cpp.o.d"
  "CMakeFiles/ringsim_trace.dir/stream.cpp.o"
  "CMakeFiles/ringsim_trace.dir/stream.cpp.o.d"
  "CMakeFiles/ringsim_trace.dir/trace_file.cpp.o"
  "CMakeFiles/ringsim_trace.dir/trace_file.cpp.o.d"
  "CMakeFiles/ringsim_trace.dir/workload.cpp.o"
  "CMakeFiles/ringsim_trace.dir/workload.cpp.o.d"
  "libringsim_trace.a"
  "libringsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
