# Empty dependencies file for ablation_ring.
# This may be replaced when dependencies are built.
