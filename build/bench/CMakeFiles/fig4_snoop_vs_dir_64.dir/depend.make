# Empty dependencies file for fig4_snoop_vs_dir_64.
# This may be replaced when dependencies are built.
