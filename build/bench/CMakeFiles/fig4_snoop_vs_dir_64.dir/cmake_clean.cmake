file(REMOVE_RECURSE
  "CMakeFiles/fig4_snoop_vs_dir_64.dir/fig4_snoop_vs_dir_64.cpp.o"
  "CMakeFiles/fig4_snoop_vs_dir_64.dir/fig4_snoop_vs_dir_64.cpp.o.d"
  "fig4_snoop_vs_dir_64"
  "fig4_snoop_vs_dir_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_snoop_vs_dir_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
