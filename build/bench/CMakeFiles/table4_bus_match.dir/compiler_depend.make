# Empty compiler generated dependencies file for table4_bus_match.
# This may be replaced when dependencies are built.
