file(REMOVE_RECURSE
  "CMakeFiles/table4_bus_match.dir/table4_bus_match.cpp.o"
  "CMakeFiles/table4_bus_match.dir/table4_bus_match.cpp.o.d"
  "table4_bus_match"
  "table4_bus_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bus_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
