# Empty compiler generated dependencies file for table3_snoop_rate.
# This may be replaced when dependencies are built.
