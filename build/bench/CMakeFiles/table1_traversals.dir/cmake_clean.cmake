file(REMOVE_RECURSE
  "CMakeFiles/table1_traversals.dir/table1_traversals.cpp.o"
  "CMakeFiles/table1_traversals.dir/table1_traversals.cpp.o.d"
  "table1_traversals"
  "table1_traversals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_traversals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
