# Empty compiler generated dependencies file for table1_traversals.
# This may be replaced when dependencies are built.
