file(REMOVE_RECURSE
  "CMakeFiles/ablation_insertion_ring.dir/ablation_insertion_ring.cpp.o"
  "CMakeFiles/ablation_insertion_ring.dir/ablation_insertion_ring.cpp.o.d"
  "ablation_insertion_ring"
  "ablation_insertion_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_insertion_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
