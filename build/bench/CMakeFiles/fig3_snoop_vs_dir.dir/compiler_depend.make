# Empty compiler generated dependencies file for fig3_snoop_vs_dir.
# This may be replaced when dependencies are built.
