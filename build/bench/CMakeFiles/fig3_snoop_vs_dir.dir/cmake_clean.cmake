file(REMOVE_RECURSE
  "CMakeFiles/fig3_snoop_vs_dir.dir/fig3_snoop_vs_dir.cpp.o"
  "CMakeFiles/fig3_snoop_vs_dir.dir/fig3_snoop_vs_dir.cpp.o.d"
  "fig3_snoop_vs_dir"
  "fig3_snoop_vs_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_snoop_vs_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
