# Empty compiler generated dependencies file for fig6_ring_vs_bus.
# This may be replaced when dependencies are built.
