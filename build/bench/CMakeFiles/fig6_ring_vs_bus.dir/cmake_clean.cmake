file(REMOVE_RECURSE
  "CMakeFiles/fig6_ring_vs_bus.dir/fig6_ring_vs_bus.cpp.o"
  "CMakeFiles/fig6_ring_vs_bus.dir/fig6_ring_vs_bus.cpp.o.d"
  "fig6_ring_vs_bus"
  "fig6_ring_vs_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ring_vs_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
