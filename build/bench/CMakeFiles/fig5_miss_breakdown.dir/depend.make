# Empty dependencies file for fig5_miss_breakdown.
# This may be replaced when dependencies are built.
