
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/protocol_shootout.cpp" "examples/CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o" "gcc" "examples/CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ringsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ringsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/ringsim_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ringsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ringsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/ringsim_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/ringsim_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ringsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ringsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ringsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
